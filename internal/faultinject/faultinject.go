// Package faultinject provides named failpoints for deterministic chaos
// testing of the serving stack. A failpoint is a call site compiled into
// production code — Inject at a point where a fault could plausibly
// occur — whose behavior is supplied by tests: sleep to simulate a slow
// evaluator, panic to simulate a crashing measure, return an error to
// simulate a failing snapshot build.
//
// The package has two implementations selected by the `faultinject`
// build tag:
//
//   - Without the tag (the default, what production and the tier-1 test
//     suite build), every function is an empty no-op that the compiler
//     inlines away; Set is inert and Enabled is the constant false, so
//     dead failpoint plumbing costs nothing on the hot paths.
//   - With `-tags faultinject` (the chaos gate in scripts/check.sh),
//     Inject consults a process-wide registry of handlers installed by
//     Set, counts every trigger, and runs whatever fault the test
//     registered.
//
// Failpoint names are exported constants so injection sites and tests
// share one catalog (see DESIGN.md §10 for the semantics of each):
//
//	SlowEvaluator  delays every top-k round — exercises the cooperative
//	               cancellation checkpoints and deadline enforcement
//	PanicMeasure   panics inside the engine's execute path — exercises
//	               panic isolation (one bad request, not a dead batch)
//	RefreshFail    fails snapshot builds — exercises the Refresh retry
//	               helper's backoff loop
//	QueueDelay     delays a request between its cache probe and the
//	               admission gate — exercises shed-under-load behavior
//	               and the cache-hit bypass
//	ClusterPartitionDown / ClusterPartitionSlow / ClusterPartitionFlap
//	               fault individual partitions behind the scatter-gather
//	               coordinator — exercise hedging, per-leg retries and
//	               partial-result degradation
//
// The cluster failpoints are keyed: the injection site passes the target
// partition id, and a handler installed with SetKeyed decides per key
// whether (and how) to fault. Unkeyed handlers installed with Set fire
// for every key of the same name, so a blanket fault needs no routing.
//
// Handlers run on the goroutine that hits the failpoint and must be safe
// for concurrent use; the chaos tests run under -race.
package faultinject

// The failpoint catalog. Every name is "<package>.<site>" of the point
// it arms.
const (
	// SlowEvaluator is hit once per round of every top-k algorithm
	// (internal/topk); a sleeping handler turns any quantify query into a
	// slow one.
	SlowEvaluator = "topk.slow-evaluator"
	// PanicMeasure is hit at the top of the serve engine's execute path;
	// a panicking handler simulates an unfairness measure crashing
	// mid-query.
	PanicMeasure = "serve.panic-measure"
	// RefreshFail is hit inside every snapshot build performed by
	// Engine.RefreshCtx; an erroring handler simulates a failing
	// copy-on-write table refresh.
	RefreshFail = "serve.refresh-fail"
	// QueueDelay is hit between a request's cache probe and its admission
	// to the compute path; a sleeping handler piles requests up against
	// the admission gate.
	QueueDelay = "serve.queue-delay"
	// ClusterPartitionDown is hit (keyed by partition id) at the top of
	// every simulated-RPC send; an erroring handler makes the partition
	// unreachable, exercising leg retries and partial-result degradation.
	ClusterPartitionDown = "cluster.partition-down"
	// ClusterPartitionSlow is hit (keyed by partition id) on the serving
	// side of every simulated RPC; a sleeping or channel-blocking handler
	// stalls the leg, exercising the p99-derived hedge and leg deadline
	// budgets.
	ClusterPartitionSlow = "cluster.partition-slow"
	// ClusterPartitionFlap is hit (keyed by partition id) at the top of
	// every simulated-RPC send, after ClusterPartitionDown; a handler
	// failing every other call simulates an intermittently reachable
	// partition that per-leg backoff should absorb without degrading.
	ClusterPartitionFlap = "cluster.partition-flap"
)
