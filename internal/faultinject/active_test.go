//go:build faultinject

package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestInjectRunsArmedHandler(t *testing.T) {
	defer Reset()
	if !Enabled {
		t.Fatal("faultinject build must report Enabled")
	}
	fired := 0
	Set("t.site", func() error { fired++; return errors.New("ignored") })
	Inject("t.site")
	Inject("t.site")
	if fired != 2 {
		t.Fatalf("handler fired %d times, want 2", fired)
	}
	if Hits("t.site") != 2 {
		t.Fatalf("hits = %d, want 2", Hits("t.site"))
	}
}

func TestInjectErrPropagates(t *testing.T) {
	defer Reset()
	want := errors.New("boom")
	Set("t.err", func() error { return want })
	if err := InjectErr("t.err"); !errors.Is(err, want) {
		t.Fatalf("InjectErr = %v, want %v", err, want)
	}
	if err := InjectErr("t.unarmed"); err != nil {
		t.Fatalf("unarmed failpoint returned %v", err)
	}
}

func TestClearKeepsHitsResetZeroes(t *testing.T) {
	defer Reset()
	Set("t.clear", func() error { return nil })
	Inject("t.clear")
	Clear("t.clear")
	Inject("t.clear") // disarmed: must not count
	if Hits("t.clear") != 1 {
		t.Fatalf("hits after Clear = %d, want 1", Hits("t.clear"))
	}
	Reset()
	if Hits("t.clear") != 0 {
		t.Fatalf("hits after Reset = %d, want 0", Hits("t.clear"))
	}
}

// TestConcurrentInjects hammers one failpoint from many goroutines while
// another goroutine re-arms it — the registry must stay race-clean (run
// under -race via the chaos gate).
func TestConcurrentInjects(t *testing.T) {
	defer Reset()
	Set("t.conc", func() error { return nil })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				Inject("t.conc")
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			Set("t.conc", func() error { return nil })
		}
	}()
	wg.Wait()
	if Hits("t.conc") != 4000 {
		t.Fatalf("hits = %d, want 4000", Hits("t.conc"))
	}
}
