//go:build !faultinject

package faultinject

import "testing"

// TestNoopBuildIsInert pins the default build's contract: failpoints are
// disabled, Set does not arm anything, and Inject/InjectErr are free
// no-ops — the guarantee that lets production code keep injection sites
// on hot paths.
func TestNoopBuildIsInert(t *testing.T) {
	if Enabled {
		t.Fatal("default build must report failpoints disabled")
	}
	Set(SlowEvaluator, func() error { panic("must never run") })
	Inject(SlowEvaluator)
	if err := InjectErr(SlowEvaluator); err != nil {
		t.Fatalf("InjectErr = %v, want nil", err)
	}
	if Hits(SlowEvaluator) != 0 {
		t.Fatalf("hits = %d, want 0", Hits(SlowEvaluator))
	}
	Clear(SlowEvaluator)
	Reset()
}
