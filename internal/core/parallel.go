package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file holds the shared machinery of the parallel evaluation
// pipeline: the precomputed evaluation plan and the sharding helpers. See
// DESIGN.md §7 ("Concurrency model") for the invariants.

// evalPlan precomputes everything about the group dimension that is
// constant across result pages: the groups to evaluate, their canonical
// keys, and each group's comparable set with its keys. Building it once
// per EvaluateAll keeps Group.Key's string construction and
// Schema.Comparable off the per-page hot path entirely. A plan is
// read-only after construction and safe to share across worker
// goroutines.
type evalPlan struct {
	groups   []Group
	keys     []string   // keys[i] == groups[i].Key()
	compKeys [][]string // compKeys[i][j] == schema.Comparable(groups[i])[j].Key()
}

func newEvalPlan(s *Schema, groups []Group) *evalPlan {
	p := &evalPlan{
		groups:   groups,
		keys:     make([]string, len(groups)),
		compKeys: make([][]string, len(groups)),
	}
	for i, g := range groups {
		p.keys[i] = g.Key()
		cgs := s.Comparable(g)
		ck := make([]string, len(cgs))
		for j, cg := range cgs {
			ck[j] = cg.Key()
		}
		p.compKeys[i] = ck
	}
	return p
}

// BoundedWorkers resolves a Workers setting against the number of
// independent work items: 0 means runtime.GOMAXPROCS(0), and the result
// never exceeds the item count (one goroutine per item is the useful
// maximum) and never drops below 1. It is the single convention every
// concurrent component of the repository uses to size its pool — the
// evaluators' sharded pipelines and the serve layer's query batches.
func BoundedWorkers(workers, items int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// shardBounds returns the half-open range [lo, hi) of items assigned to
// shard i of w over n items. Shards are contiguous, in order, and differ
// in size by at most one, so concatenating shard outputs in shard order
// replays the serial iteration order exactly — the invariant the
// deterministic merge relies on.
func shardBounds(n, w, i int) (lo, hi int) {
	return i * n / w, (i + 1) * n / w
}

// RunSharded splits n items across w worker goroutines and calls run with
// each shard's index and item range. It returns once every shard is done.
// With w == 1 it runs inline on the caller's goroutine. Static contiguous
// shards are the right shape for the evaluators, whose per-item cost is
// uniform and whose merge step needs shard order; use RunIndexed when item
// costs vary.
func RunSharded(n, w int, run func(shard, lo, hi int)) {
	if w <= 1 {
		run(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		lo, hi := shardBounds(n, w, i)
		go func(shard, lo, hi int) {
			defer wg.Done()
			run(shard, lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
}

// RunIndexed calls fn(i) for every i in [0, n) across w worker goroutines,
// handing out indices dynamically through a shared atomic counter. Unlike
// RunSharded's static partition, a worker that finishes a cheap item
// immediately pulls the next one, which keeps the pool busy when item
// costs vary wildly — the regime of a mixed query batch where one request
// is a cache hit and the next runs a full table scan. fn is called at most
// once per index; writes to distinct result slots need no synchronization.
// With w <= 1 it runs inline on the caller's goroutine.
func RunIndexed(n, w int, fn func(i int)) {
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
