package core

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"
	"time"

	"fairjob/internal/metrics"
	"fairjob/internal/obs"
)

// UserResults is one study participant's personalized result list for a
// (query, location) pair on a search engine: E_q^l(u) in §3.2.
type UserResults struct {
	ID    string
	Attrs Assignment
	List  []string // result identifiers, best first
}

// SearchResults bundles all participants' result lists for one (query,
// location) pair.
type SearchResults struct {
	Query    Query
	Location Location
	Users    []UserResults
}

// SearchMeasure selects between the two search-engine distance measures of
// §3.2. Both are distances: higher means more divergent results and
// therefore more unfair (see DESIGN.md §5 on orientation).
type SearchMeasure int

const (
	// MeasureKendallTau is the normalized Kendall tau distance between
	// result lists.
	MeasureKendallTau SearchMeasure = iota
	// MeasureJaccard is the Jaccard distance between result sets.
	MeasureJaccard
)

func (m SearchMeasure) String() string {
	switch m {
	case MeasureKendallTau:
		return "KendallTau"
	case MeasureJaccard:
		return "Jaccard"
	default:
		return fmt.Sprintf("SearchMeasure(%d)", int(m))
	}
}

// SearchEvaluator computes d<g,q,l> for search-engine result lists
// following §3.2: the unfairness of group g is the average over comparable
// groups g' of the average pairwise distance between result lists of users
// in g and users in g'. The evaluator is read-only during evaluation and
// safe to share across goroutines; EvaluateAll shards its work across
// Workers goroutines internally.
type SearchEvaluator struct {
	Schema  *Schema
	Measure SearchMeasure
	// Workers bounds the goroutines EvaluateAll shards result sets
	// across: 0 uses runtime.GOMAXPROCS(0), 1 forces single-threaded
	// evaluation. Any worker count produces a byte-identical table (see
	// DESIGN.md §7).
	Workers int
	// Obs, when non-nil, receives per-shard telemetry from EvaluateAll
	// under the eval="search" label family: shard durations, result-set
	// and cell throughput counters, the worker-utilization gauge of the
	// latest run, and the distance-cache hit/miss totals. A nil registry
	// keeps evaluation telemetry-free.
	Obs *obs.Registry
}

// distFunc resolves the evaluator's measure to its distance function,
// once per evaluation rather than per pair. An out-of-range Measure is
// reported as an error here — at the top of the call, before any worker
// goroutine has started — instead of panicking in the middle of a
// sharded evaluation (see doc.go on the panic-vs-error policy).
func (e *SearchEvaluator) distFunc() (func(a, b []string) float64, error) {
	switch e.Measure {
	case MeasureKendallTau:
		return metrics.KendallTauDistance, nil
	case MeasureJaccard:
		return metrics.JaccardDistance, nil
	default:
		return nil, fmt.Errorf("core: unknown search measure %d", int(e.Measure))
	}
}

// mustDistFunc backs the legacy (float64, bool) single-cell APIs, which
// have no error channel: a misconfigured Measure is a programming error
// there, and panics.
func (e *SearchEvaluator) mustDistFunc() func(a, b []string) float64 {
	fn, err := e.distFunc()
	if err != nil {
		panic(err)
	}
	return fn
}

func usersOf(sr *SearchResults, g Group) []UserResults {
	var out []UserResults
	for _, u := range sr.Users {
		if u.Attrs.Matches(g.Label) {
			out = append(out, u)
		}
	}
	return out
}

// distCache memoizes the pairwise distance between a result set's users
// so each user pair is measured exactly once per (SearchResults, measure).
// Overlapping (g, g') combinations — e.g. "Male" vs "Female" and
// "Asian Male" vs "Asian Female" — would otherwise re-walk the same two
// result lists once per combination. The cache stores one value per
// unordered pair, which is sound because both distance measures are
// symmetric: the discordant-pair count (Kendall) and the set overlap
// (Jaccard, also Kendall's degenerate fallback) do not depend on argument
// order, so dist(u, v) and dist(v, u) are bitwise-equal. A distCache
// belongs to one worker goroutine and is not safe for concurrent use.
type distCache struct {
	fn           func(a, b []string) float64 // the resolved measure
	n            int
	d            []float64 // row-major n×n; NaN marks a pair not yet measured
	hits, misses int       // memo effectiveness, drained into obs counters
}

func newDistCache(fn func(a, b []string) float64, n int) *distCache {
	c := &distCache{}
	c.reset(fn, n)
	return c
}

// reset re-points the cache at a new result set's users, reusing the n×n
// backing buffer whenever it is large enough. A worker shard walks many
// result sets of similar cardinality; resetting one cache per shard
// instead of allocating one per result set removes the largest
// per-result-set allocation of the search pipeline.
func (c *distCache) reset(fn func(a, b []string) float64, n int) {
	c.fn = fn
	c.n = n
	need := n * n
	if cap(c.d) < need {
		c.d = make([]float64, need)
	} else {
		c.d = c.d[:need]
	}
	for i := range c.d {
		c.d[i] = math.NaN()
	}
	c.hits, c.misses = 0, 0
}

// dist returns the memoized distance between users i and j of sr.
func (c *distCache) dist(sr *SearchResults, i, j int) float64 {
	if v := c.d[i*c.n+j]; !math.IsNaN(v) {
		c.hits++
		return v
	}
	c.misses++
	v := c.fn(sr.Users[i].List, sr.Users[j].List)
	c.d[i*c.n+j] = v
	c.d[j*c.n+i] = v
	return v
}

// Unfairness returns d<g,q,l> per Equation 1. The boolean is false when
// the value is undefined: no users of g participated, or no comparable
// group has participants.
//
// Unfairness partitions the result set and builds a fresh distance cache
// on every call; callers evaluating many (result set, group) cells should
// use EvaluateAll, which amortizes both across all groups of a result
// set.
func (e *SearchEvaluator) Unfairness(sr *SearchResults, g Group) (float64, bool) {
	part := partitionUsers(e.Schema, sr)
	comp := e.Schema.Comparable(g)
	compKeys := make([]string, len(comp))
	for i, cg := range comp {
		compKeys[i] = cg.Key()
	}
	return e.unfairnessCell(sr, part, newDistCache(e.mustDistFunc(), len(sr.Users)), g.Key(), compKeys)
}

// unfairnessCell computes one d<g,q,l> cell from a prebuilt user
// partition and per-result-set distance cache.
func (e *SearchEvaluator) unfairnessCell(sr *SearchResults, part pagePartition, dc *distCache, gKey string, compKeys []string) (float64, bool) {
	gUsers := part[gKey]
	if len(gUsers) == 0 {
		return 0, false
	}
	var sum float64
	var n int
	for _, ck := range compKeys {
		cUsers := part[ck]
		if len(cUsers) == 0 {
			continue
		}
		var pairSum float64
		for _, u := range gUsers {
			for _, v := range cUsers {
				pairSum += dc.dist(sr, u, v)
			}
		}
		sum += pairSum / float64(len(gUsers)*len(cUsers))
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// PairwiseUnfairness returns the partial unfairness DIST(g, g') between two
// specific groups — the quantity the paper's Figure 3 illustrates — and
// false when either group has no participants.
func (e *SearchEvaluator) PairwiseUnfairness(sr *SearchResults, g, other Group) (float64, bool) {
	gUsers := usersOf(sr, g)
	oUsers := usersOf(sr, other)
	if len(gUsers) == 0 || len(oUsers) == 0 {
		return 0, false
	}
	dist := e.mustDistFunc()
	var sum float64
	for _, u := range gUsers {
		for _, v := range oUsers {
			sum += dist(u.List, v.List)
		}
	}
	return sum / float64(len(gUsers)*len(oUsers)), true
}

// EvaluateAll computes the full unfairness table over all result sets and
// groups. A nil groups slice evaluates the schema universe.
//
// EvaluateAll is EvaluateAllCtx without a context; it panics on a
// misconfigured Measure (its only error), keeping the original
// infallible signature for the experiment and example call sites.
func (e *SearchEvaluator) EvaluateAll(results []*SearchResults, groups []Group) *Table {
	t, err := e.EvaluateAllCtx(context.Background(), results, groups)
	if err != nil {
		panic(err)
	}
	return t
}

// EvaluateAllCtx computes the full unfairness table over all result sets
// and groups, under a context. A nil groups slice evaluates the schema
// universe. A misconfigured Measure is returned as an error before any
// work starts; a context that ends mid-evaluation stops every shard at
// its next result-set boundary and returns ctx.Err().
//
// The work is sharded across Workers goroutines (see the field doc): each
// worker partitions its result sets once, memoizes pairwise distances per
// result set, fills a private table with its contiguous slice of result
// sets, and the shards are merged in shard order, so the result is
// byte-identical to a single-threaded evaluation.
func (e *SearchEvaluator) EvaluateAllCtx(ctx context.Context, results []*SearchResults, groups []Group) (*Table, error) {
	dist, err := e.distFunc()
	if err != nil {
		return nil, err
	}
	if groups == nil {
		groups = e.Schema.Universe()
	}
	plan := newEvalPlan(e.Schema, groups)
	run := newEvalMetrics(e.Obs, "search").begin()
	w := BoundedWorkers(e.Workers, len(results))
	shards := make([]*Table, w)
	errs := make([]error, w)
	done := ctx.Done()
	// Run the fan-out under pprof labels: the shard goroutines inherit
	// them, so CPU profiles attribute evaluation samples to the evaluator
	// family and measure (and keep any request labels already on ctx).
	defer pprof.SetGoroutineLabels(ctx)
	ctx = pprof.WithLabels(ctx, pprof.Labels("eval", "search", "measure", e.Measure.String()))
	pprof.SetGoroutineLabels(ctx)
	RunSharded(len(results), w, func(shard, lo, hi int) {
		start := time.Now()
		cells, dcHits, dcMisses := 0, 0, 0
		t := getShardTable()
		pt := getPartitioner(e.Schema)
		defer putPartitioner(pt)
		dc := &distCache{}
		for _, sr := range results[lo:hi] {
			if done != nil {
				select {
				case <-done:
					errs[shard] = ctx.Err()
					return
				default:
				}
			}
			part := pt.users(sr)
			dc.reset(dist, len(sr.Users))
			for i := range plan.groups {
				if v, ok := e.unfairnessCell(sr, part, dc, plan.keys[i], plan.compKeys[i]); ok {
					t.setKeyed(plan.keys[i], plan.groups[i], sr.Query, sr.Location, v)
					cells++
				}
			}
			dcHits += dc.hits
			dcMisses += dc.misses
		}
		shards[shard] = t
		run.shardDone(start, hi-lo, cells)
		run.distCacheDone(dcHits, dcMisses)
	})
	for _, err := range errs {
		if err != nil {
			putShardTables(shards, nil)
			return nil, err
		}
	}
	out := MergeTables(shards)
	putShardTables(shards, out)
	run.finish(w)
	return out, nil
}
