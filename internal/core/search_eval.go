package core

import (
	"fmt"

	"fairjob/internal/metrics"
)

// UserResults is one study participant's personalized result list for a
// (query, location) pair on a search engine: E_q^l(u) in §3.2.
type UserResults struct {
	ID    string
	Attrs Assignment
	List  []string // result identifiers, best first
}

// SearchResults bundles all participants' result lists for one (query,
// location) pair.
type SearchResults struct {
	Query    Query
	Location Location
	Users    []UserResults
}

// SearchMeasure selects between the two search-engine distance measures of
// §3.2. Both are distances: higher means more divergent results and
// therefore more unfair (see DESIGN.md §5 on orientation).
type SearchMeasure int

const (
	// MeasureKendallTau is the normalized Kendall tau distance between
	// result lists.
	MeasureKendallTau SearchMeasure = iota
	// MeasureJaccard is the Jaccard distance between result sets.
	MeasureJaccard
)

func (m SearchMeasure) String() string {
	switch m {
	case MeasureKendallTau:
		return "KendallTau"
	case MeasureJaccard:
		return "Jaccard"
	default:
		return fmt.Sprintf("SearchMeasure(%d)", int(m))
	}
}

// SearchEvaluator computes d<g,q,l> for search-engine result lists
// following §3.2: the unfairness of group g is the average over comparable
// groups g' of the average pairwise distance between result lists of users
// in g and users in g'.
type SearchEvaluator struct {
	Schema  *Schema
	Measure SearchMeasure
}

func (e *SearchEvaluator) dist(a, b []string) float64 {
	switch e.Measure {
	case MeasureKendallTau:
		return metrics.KendallTauDistance(a, b)
	case MeasureJaccard:
		return metrics.JaccardDistance(a, b)
	default:
		panic(fmt.Sprintf("core: unknown search measure %d", int(e.Measure)))
	}
}

func usersOf(sr *SearchResults, g Group) []UserResults {
	var out []UserResults
	for _, u := range sr.Users {
		if u.Attrs.Matches(g.Label) {
			out = append(out, u)
		}
	}
	return out
}

// Unfairness returns d<g,q,l> per Equation 1. The boolean is false when
// the value is undefined: no users of g participated, or no comparable
// group has participants.
func (e *SearchEvaluator) Unfairness(sr *SearchResults, g Group) (float64, bool) {
	gUsers := usersOf(sr, g)
	if len(gUsers) == 0 {
		return 0, false
	}
	var sum float64
	var n int
	for _, cg := range e.Schema.Comparable(g) {
		cUsers := usersOf(sr, cg)
		if len(cUsers) == 0 {
			continue
		}
		var pairSum float64
		for _, u := range gUsers {
			for _, v := range cUsers {
				pairSum += e.dist(u.List, v.List)
			}
		}
		sum += pairSum / float64(len(gUsers)*len(cUsers))
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// PairwiseUnfairness returns the partial unfairness DIST(g, g') between two
// specific groups — the quantity the paper's Figure 3 illustrates — and
// false when either group has no participants.
func (e *SearchEvaluator) PairwiseUnfairness(sr *SearchResults, g, other Group) (float64, bool) {
	gUsers := usersOf(sr, g)
	oUsers := usersOf(sr, other)
	if len(gUsers) == 0 || len(oUsers) == 0 {
		return 0, false
	}
	var sum float64
	for _, u := range gUsers {
		for _, v := range oUsers {
			sum += e.dist(u.List, v.List)
		}
	}
	return sum / float64(len(gUsers)*len(oUsers)), true
}

// EvaluateAll computes the full unfairness table over all result sets and
// groups. A nil groups slice evaluates the schema universe.
func (e *SearchEvaluator) EvaluateAll(results []*SearchResults, groups []Group) *Table {
	if groups == nil {
		groups = e.Schema.Universe()
	}
	t := NewTable()
	for _, sr := range results {
		for _, g := range groups {
			if v, ok := e.Unfairness(sr, g); ok {
				t.Set(g, sr.Query, sr.Location, v)
			}
		}
	}
	return t
}
