package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"fairjob/internal/stats"
)

// randomSchema builds a small random schema from quick-generated sizes.
func randomSchema(nAttrs, domSize uint8) *Schema {
	na := int(nAttrs%3) + 1
	domains := map[Attribute][]string{}
	for a := 0; a < na; a++ {
		size := int(domSize%3) + 2
		vals := make([]string, size)
		for v := range vals {
			vals[v] = fmt.Sprintf("v%d", v)
		}
		domains[Attribute(fmt.Sprintf("attr%d", a))] = vals
	}
	return NewSchema(domains)
}

// Property: the universe size is Π(1+|dom_a|) − 1 (every attribute either
// unconstrained or set to one of its values, minus the empty label).
func TestUniverseSizeFormula(t *testing.T) {
	f := func(nAttrs, domSize uint8) bool {
		s := randomSchema(nAttrs, domSize)
		want := 1
		for _, a := range s.Attributes() {
			want *= 1 + len(s.Domain(a))
		}
		want--
		return len(s.Universe()) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: comparable(g) never contains g, every comparable group
// constrains exactly g's attributes, and for a full group the count is
// Σ(|dom_a| − 1).
func TestComparableGroupProperties(t *testing.T) {
	f := func(nAttrs, domSize uint8) bool {
		s := randomSchema(nAttrs, domSize)
		for _, g := range s.Universe() {
			attrs := g.Label.Attributes()
			comp := s.Comparable(g)
			for _, cg := range comp {
				if cg.Key() == g.Key() {
					return false
				}
				cAttrs := cg.Label.Attributes()
				if len(cAttrs) != len(attrs) {
					return false
				}
				for i := range attrs {
					if cAttrs[i] != attrs[i] {
						return false
					}
				}
			}
			if len(attrs) == len(s.Attributes()) {
				want := 0
				for _, a := range attrs {
					want += len(s.Domain(a)) - 1
				}
				if len(comp) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a full assignment matches exactly one full group, and matches
// a universe group iff the group's predicates agree with it.
func TestAssignmentMembershipProperties(t *testing.T) {
	f := func(nAttrs, domSize uint8, picks [4]uint8) bool {
		s := randomSchema(nAttrs, domSize)
		attrs := s.Attributes()
		a := Assignment{}
		for i, attr := range attrs {
			dom := s.Domain(attr)
			a[attr] = dom[int(picks[i%4])%len(dom)]
		}
		matched := 0
		for _, g := range s.FullGroups() {
			if a.Matches(g.Label) {
				matched++
			}
		}
		return matched == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// randomRanking builds a ranking of n workers with random demographics.
func randomRanking(seed uint64, n int) *MarketplaceRanking {
	rng := stats.NewRNG(seed)
	genders := []string{"Male", "Female"}
	eths := []string{"Asian", "Black", "White"}
	r := &MarketplaceRanking{Query: "q", Location: "l"}
	for i := 0; i < n; i++ {
		r.Workers = append(r.Workers, RankedWorker{
			ID:    fmt.Sprintf("w%03d", i),
			Attrs: Assignment{"gender": genders[rng.Intn(2)], "ethnicity": eths[rng.Intn(3)]},
			Rank:  i + 1,
			Score: math.NaN(),
		})
	}
	return r
}

// Property: marketplace unfairness is always in [0, 1] when defined, for
// both measures, on arbitrary rankings.
func TestMarketplaceUnfairnessBoundsProperty(t *testing.T) {
	schema := DefaultSchema()
	f := func(seed uint64, sz uint8) bool {
		r := randomRanking(seed, int(sz%50)+1)
		for _, m := range []MarketplaceMeasure{MeasureEMD, MeasureExposure} {
			ev := &MarketplaceEvaluator{Schema: schema, Measure: m}
			for _, g := range schema.Universe() {
				if d, ok := ev.Unfairness(r, g); ok && (d < 0 || d > 1 || math.IsNaN(d)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the order of the Workers slice is irrelevant — only the Rank
// field matters.
func TestMarketplaceWorkerOrderIrrelevant(t *testing.T) {
	schema := DefaultSchema()
	f := func(seed uint64, sz uint8) bool {
		r := randomRanking(seed, int(sz%30)+2)
		shuffled := &MarketplaceRanking{Query: r.Query, Location: r.Location,
			Workers: append([]RankedWorker(nil), r.Workers...)}
		rng := stats.NewRNG(seed ^ 0xabc)
		rng.Shuffle(len(shuffled.Workers), func(i, j int) {
			shuffled.Workers[i], shuffled.Workers[j] = shuffled.Workers[j], shuffled.Workers[i]
		})
		for _, m := range []MarketplaceMeasure{MeasureEMD, MeasureExposure} {
			ev := &MarketplaceEvaluator{Schema: schema, Measure: m}
			for _, g := range schema.Universe() {
				d1, ok1 := ev.Unfairness(r, g)
				d2, ok2 := ev.Unfairness(shuffled, g)
				if ok1 != ok2 || math.Abs(d1-d2) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: for the two-member gender dimension, Male and Female always
// measure identically on pages where both appear — the equality theorem
// EXPERIMENTS.md's aggregation discussion rests on.
func TestGenderEqualityTheorem(t *testing.T) {
	schema := DefaultSchema()
	male := NewGroup(Predicate{"gender", "Male"})
	female := NewGroup(Predicate{"gender", "Female"})
	f := func(seed uint64, sz uint8) bool {
		r := randomRanking(seed, int(sz%40)+2)
		hasM, hasF := false, false
		for _, w := range r.Workers {
			if w.Attrs["gender"] == "Male" {
				hasM = true
			} else {
				hasF = true
			}
		}
		if !hasM || !hasF {
			return true
		}
		for _, m := range []MarketplaceMeasure{MeasureEMD, MeasureExposure} {
			ev := &MarketplaceEvaluator{Schema: schema, Measure: m}
			dm, okM := ev.Unfairness(r, male)
			df, okF := ev.Unfairness(r, female)
			if !okM || !okF || math.Abs(dm-df) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: search unfairness is in [0, 1] when defined, both measures.
func TestSearchUnfairnessBoundsProperty(t *testing.T) {
	schema := DefaultSchema()
	f := func(seed uint64, nUsers, listLen uint8) bool {
		rng := stats.NewRNG(seed)
		sr := &SearchResults{Query: "q", Location: "l"}
		genders := []string{"Male", "Female"}
		eths := []string{"Asian", "Black", "White"}
		n := int(nUsers%10) + 2
		ll := int(listLen%12) + 1
		for u := 0; u < n; u++ {
			list := make([]string, ll)
			for i := range list {
				list[i] = fmt.Sprintf("item%d", rng.Intn(20))
			}
			sr.Users = append(sr.Users, UserResults{
				ID:    fmt.Sprintf("u%d", u),
				Attrs: Assignment{"gender": genders[rng.Intn(2)], "ethnicity": eths[rng.Intn(3)]},
				List:  list,
			})
		}
		for _, m := range []SearchMeasure{MeasureKendallTau, MeasureJaccard} {
			ev := &SearchEvaluator{Schema: schema, Measure: m}
			for _, g := range schema.Universe() {
				if d, ok := ev.Unfairness(sr, g); ok && (d < 0 || d > 1 || math.IsNaN(d)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
