package core

import (
	"sync"

	"fairjob/internal/stats"
)

// This file holds the evaluators' worker-scratch recycling. The sharded
// EvaluateAll pipelines used to pay a fixed per-shard allocation tax —
// a fresh partitioner (whose string-interning caches then re-warmed from
// scratch), a fresh measure scratch, and a fresh private table per shard
// per run — which on hosts where the shards cannot actually run in
// parallel made workers>1 strictly slower than workers=1 (the BENCH_PR7
// regression: EMD 100ms→107ms and 661→1908 allocs/op from w=1 to w=8).
// Pooling turns that tax into a one-time warm-up: repeated evaluations
// (benchmark loops, snapshot refreshes, live-churn rebuilds) reuse warm
// partitioners, scratch buffers and shard tables, and the merge step
// fills one presized table (MergeTables) instead of growing shard 0
// incrementally.
//
// Pool safety: every pooled object is owned by exactly one goroutine
// between Get and Put, and nothing retained by a caller is ever pooled —
// shard tables are recycled only when MergeTables copied them into a
// fresh result (w > 1), never when the single shard IS the result.
// Determinism is untouched: partitioners and scratch buffers are pure
// caches, and pooled tables are fully cleared before reuse.

// partitionerPool recycles partitioners across evaluations. A
// partitioner is schema-specific, so Get validates the schema by
// identity and discards mismatches (in practice a process runs one
// schema; the check keeps multi-schema tests correct).
var partitionerPool sync.Pool

func getPartitioner(s *Schema) *partitioner {
	if v := partitionerPool.Get(); v != nil {
		if p := v.(*partitioner); p.s == s {
			return p
		}
	}
	return newPartitioner(s)
}

func putPartitioner(p *partitioner) {
	if p != nil {
		partitionerPool.Put(p)
	}
}

// shardTablePool recycles the evaluators' per-shard private tables. A
// recycled table keeps its map capacity, so after warm-up a shard's fill
// performs no map growth at all.
var shardTablePool sync.Pool

func getShardTable() *Table {
	if v := shardTablePool.Get(); v != nil {
		return v.(*Table)
	}
	return NewTable()
}

// putShardTables recycles every shard table that out does not own: after
// MergeTables copied the shards into a fresh result their maps are dead
// weight, and clearing them for reuse is cheaper than letting the GC
// sweep them every run.
func putShardTables(shards []*Table, out *Table) {
	for _, s := range shards {
		if s == nil || s == out {
			continue
		}
		s.reset()
		shardTablePool.Put(s)
	}
}

// mktScratchPool recycles the marketplace evaluator's per-worker measure
// scratch (histogram pair + relevance/exposure vectors).
var mktScratchPool sync.Pool

func getMktScratch(bins int) *mktScratch {
	if v := mktScratchPool.Get(); v != nil {
		if sc := v.(*mktScratch); sc.hg.Bins() == bins {
			return sc
		}
	}
	return &mktScratch{
		hg: stats.NewHistogram(0, 1, bins),
		hc: stats.NewHistogram(0, 1, bins),
	}
}

func putMktScratch(sc *mktScratch) {
	if sc != nil {
		mktScratchPool.Put(sc)
	}
}
