package core

import (
	"fmt"
	"math"

	"fairjob/internal/metrics"
	"fairjob/internal/stats"
)

// RankedWorker is one worker in a marketplace result page.
type RankedWorker struct {
	ID    string
	Attrs Assignment
	Rank  int // 1-based position in the result page
	// Score is the platform's scoring-function value f_q^l(w) in [0, 1]
	// when observable. Real marketplaces do not expose it (§3.3.1), in
	// which case it is NaN and relevance is derived from Rank.
	Score float64
}

// MarketplaceRanking is the result of one query at one location on an
// online job marketplace: a ranked page of workers (TaskRabbit returns at
// most 50).
type MarketplaceRanking struct {
	Query    Query
	Location Location
	Workers  []RankedWorker
}

// Relevance returns the relevance proxy used by both marketplace measures:
// the observed score when useScores is set and the worker has one,
// otherwise rel(w) = 1 − rank/N (§3.3.1).
func (r *MarketplaceRanking) Relevance(w RankedWorker, useScores bool) float64 {
	if useScores && !math.IsNaN(w.Score) {
		return w.Score
	}
	return metrics.RelevanceFromRank(w.Rank, len(r.Workers))
}

// MarketplaceMeasure selects between the two marketplace unfairness
// notions of §3.3.
type MarketplaceMeasure int

const (
	// MeasureEMD is the Earth Mover's Distance between score histograms
	// of a group and each comparable group (§3.3.1).
	MeasureEMD MarketplaceMeasure = iota
	// MeasureExposure is the deviation of a group's exposure share from
	// its relevance share (§3.3.2).
	MeasureExposure
)

func (m MarketplaceMeasure) String() string {
	switch m {
	case MeasureEMD:
		return "EMD"
	case MeasureExposure:
		return "Exposure"
	default:
		return fmt.Sprintf("MarketplaceMeasure(%d)", int(m))
	}
}

// DefaultEMDBins is the histogram resolution used by the EMD measure when
// the evaluator does not override it. Ten bins over [0,1] matches the
// relevance granularity of a ten-worker page from the paper's Figure 4
// example and is ablated in BenchmarkAblationEMDBins.
const DefaultEMDBins = 10

// MarketplaceEvaluator computes d<g,q,l> for marketplace rankings.
type MarketplaceEvaluator struct {
	Schema  *Schema
	Measure MarketplaceMeasure
	// Bins is the EMD histogram bin count (DefaultEMDBins when 0).
	Bins int
	// UseScores makes relevance use the platform's observed scores when
	// present instead of rank-derived relevance.
	UseScores bool
}

func (e *MarketplaceEvaluator) bins() int {
	if e.Bins <= 0 {
		return DefaultEMDBins
	}
	return e.Bins
}

// Unfairness returns d<g,q,l> for the given ranking. The boolean is false
// when the value is undefined: the group has no workers on the page, or no
// comparable group does, leaving nothing to contrast against.
func (e *MarketplaceEvaluator) Unfairness(r *MarketplaceRanking, g Group) (float64, bool) {
	if len(r.Workers) == 0 {
		return 0, false
	}
	switch e.Measure {
	case MeasureEMD:
		return e.emd(r, g)
	case MeasureExposure:
		return e.exposure(r, g)
	default:
		panic(fmt.Sprintf("core: unknown marketplace measure %d", int(e.Measure)))
	}
}

func (e *MarketplaceEvaluator) membersOf(r *MarketplaceRanking, g Group) []RankedWorker {
	var out []RankedWorker
	for _, w := range r.Workers {
		if w.Attrs.Matches(g.Label) {
			out = append(out, w)
		}
	}
	return out
}

func (e *MarketplaceEvaluator) histogramOf(r *MarketplaceRanking, workers []RankedWorker) *stats.Histogram {
	h := stats.NewHistogram(0, 1, e.bins())
	for _, w := range workers {
		h.Add(r.Relevance(w, e.UseScores))
	}
	return h
}

// emd implements §3.3.1: average EMD between g's relevance histogram and
// each non-empty comparable group's histogram.
func (e *MarketplaceEvaluator) emd(r *MarketplaceRanking, g Group) (float64, bool) {
	members := e.membersOf(r, g)
	if len(members) == 0 {
		return 0, false
	}
	hg := e.histogramOf(r, members)
	var sum float64
	var n int
	for _, cg := range e.Schema.Comparable(g) {
		cMembers := e.membersOf(r, cg)
		if len(cMembers) == 0 {
			continue
		}
		sum += metrics.EMDHistograms(hg, e.histogramOf(r, cMembers))
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// exposure implements §3.3.2: the L1 deviation of g's exposure share from
// its relevance share, both taken over the population g ∪ comparable(g).
//
// Unlike the EMD measure, the exposure formula stays defined when no
// comparable group is on the page: both shares are then g's share of
// itself, 1, and the deviation is 0. This asymmetry is intentional and is
// what makes aggregate exposure unfairness differ between, e.g., Males and
// Females when one gender is absent from some result pages (the paper's
// Table 12, where the two genders' overall values differ even though the
// per-page deviations of two complementary groups are equal).
func (e *MarketplaceEvaluator) exposure(r *MarketplaceRanking, g Group) (float64, bool) {
	members := e.membersOf(r, g)
	if len(members) == 0 {
		return 0, false
	}
	var gExp, gRel float64
	for _, w := range members {
		gExp += metrics.ExposureAtRank(w.Rank)
		gRel += r.Relevance(w, e.UseScores)
	}
	totExp, totRel := gExp, gRel
	anyComparable := false
	for _, cg := range e.Schema.Comparable(g) {
		for _, w := range e.membersOf(r, cg) {
			totExp += metrics.ExposureAtRank(w.Rank)
			totRel += r.Relevance(w, e.UseScores)
			anyComparable = true
		}
	}
	if !anyComparable {
		// g's share of itself is 1 on both sides: deviation 0.
		return 0, true
	}
	return metrics.ExposureDeviation(
		metrics.Share(gExp, totExp),
		metrics.Share(gRel, totRel),
	), true
}

// EvaluateAll computes d<g,q,l> for every ranking and every group,
// producing the unfairness table the indices and problem solvers consume.
// A nil groups slice evaluates the full schema universe.
func (e *MarketplaceEvaluator) EvaluateAll(rankings []*MarketplaceRanking, groups []Group) *Table {
	if groups == nil {
		groups = e.Schema.Universe()
	}
	t := NewTable()
	for _, r := range rankings {
		for _, g := range groups {
			if v, ok := e.Unfairness(r, g); ok {
				t.Set(g, r.Query, r.Location, v)
			}
		}
	}
	return t
}
