package core

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"
	"time"

	"fairjob/internal/metrics"
	"fairjob/internal/obs"
	"fairjob/internal/stats"
)

// RankedWorker is one worker in a marketplace result page.
type RankedWorker struct {
	ID    string
	Attrs Assignment
	Rank  int // 1-based position in the result page
	// Score is the platform's scoring-function value f_q^l(w) in [0, 1]
	// when observable. Real marketplaces do not expose it (§3.3.1), in
	// which case it is NaN and relevance is derived from Rank.
	Score float64
}

// MarketplaceRanking is the result of one query at one location on an
// online job marketplace: a ranked page of workers (TaskRabbit returns at
// most 50).
type MarketplaceRanking struct {
	Query    Query
	Location Location
	Workers  []RankedWorker
}

// Relevance returns the relevance proxy used by both marketplace measures:
// the observed score when useScores is set and the worker has one,
// otherwise rel(w) = 1 − rank/N (§3.3.1).
func (r *MarketplaceRanking) Relevance(w RankedWorker, useScores bool) float64 {
	if useScores && !math.IsNaN(w.Score) {
		return w.Score
	}
	return metrics.RelevanceFromRank(w.Rank, len(r.Workers))
}

// MarketplaceMeasure selects between the two marketplace unfairness
// notions of §3.3.
type MarketplaceMeasure int

const (
	// MeasureEMD is the Earth Mover's Distance between score histograms
	// of a group and each comparable group (§3.3.1).
	MeasureEMD MarketplaceMeasure = iota
	// MeasureExposure is the deviation of a group's exposure share from
	// its relevance share (§3.3.2).
	MeasureExposure
)

func (m MarketplaceMeasure) String() string {
	switch m {
	case MeasureEMD:
		return "EMD"
	case MeasureExposure:
		return "Exposure"
	default:
		return fmt.Sprintf("MarketplaceMeasure(%d)", int(m))
	}
}

// DefaultEMDBins is the histogram resolution used by the EMD measure when
// the evaluator does not override it. Ten bins over [0,1] matches the
// relevance granularity of a ten-worker page from the paper's Figure 4
// example and is ablated in BenchmarkAblationEMDBins.
const DefaultEMDBins = 10

// MarketplaceEvaluator computes d<g,q,l> for marketplace rankings. The
// evaluator itself is read-only during evaluation and safe to share
// across goroutines; EvaluateAll shards its work across Workers
// goroutines internally.
type MarketplaceEvaluator struct {
	Schema  *Schema
	Measure MarketplaceMeasure
	// Bins is the EMD histogram bin count (DefaultEMDBins when 0).
	Bins int
	// UseScores makes relevance use the platform's observed scores when
	// present instead of rank-derived relevance.
	UseScores bool
	// Workers bounds the goroutines EvaluateAll shards rankings across:
	// 0 uses runtime.GOMAXPROCS(0), 1 forces single-threaded evaluation.
	// Any worker count produces a byte-identical table (see DESIGN.md §7).
	Workers int
	// Obs, when non-nil, receives per-shard telemetry from EvaluateAll
	// under the eval="market" label family: shard durations, page and
	// cell throughput counters, and the worker-utilization gauge of the
	// latest run. A nil registry keeps evaluation telemetry-free.
	Obs *obs.Registry
}

func (e *MarketplaceEvaluator) bins() int {
	if e.Bins <= 0 {
		return DefaultEMDBins
	}
	return e.Bins
}

// Unfairness returns d<g,q,l> for the given ranking. The boolean is false
// when the value is undefined: the group has no workers on the page, or no
// comparable group does, leaving nothing to contrast against.
//
// Unfairness partitions the page on every call; callers evaluating many
// (ranking, group) cells should use EvaluateAll, which amortizes the
// partition across all groups of a page.
func (e *MarketplaceEvaluator) Unfairness(r *MarketplaceRanking, g Group) (float64, bool) {
	if len(r.Workers) == 0 {
		return 0, false
	}
	part := partitionRanking(e.Schema, r)
	sc := e.newScratch()
	sc.preparePage(e, r)
	return e.unfairnessCell(e.mustCellFunc(), r, part, g.Key(), e.Schema.Comparable(g), nil, sc)
}

// mktScratch is one worker goroutine's reusable evaluation state: the two
// histogram buffers the EMD measure fills per comparable-group pair, and
// the current page's relevance and exposure vectors, computed once per
// page and shared by every (group, comparable) cell on it. Reusing the
// histograms removes the dominant allocation of the EMD hot path;
// caching exposure keeps ExposureAtRank's logarithm out of the inner
// loops.
type mktScratch struct {
	hg, hc   *stats.Histogram
	rel, exp []float64 // indexed by page position
}

func (e *MarketplaceEvaluator) newScratch() *mktScratch {
	return &mktScratch{
		hg: stats.NewHistogram(0, 1, e.bins()),
		hc: stats.NewHistogram(0, 1, e.bins()),
	}
}

// preparePage fills the scratch's per-page relevance and exposure vectors
// for r. Both are pure functions of a worker's page entry, so caching
// them changes no arithmetic — each cell reads the exact value it would
// have recomputed.
func (sc *mktScratch) preparePage(e *MarketplaceEvaluator, r *MarketplaceRanking) {
	n := len(r.Workers)
	if cap(sc.rel) < n {
		sc.rel = make([]float64, n)
		sc.exp = make([]float64, n)
	} else {
		sc.rel = sc.rel[:n]
		sc.exp = sc.exp[:n]
	}
	for i, w := range r.Workers {
		sc.rel[i] = r.Relevance(w, e.UseScores)
		sc.exp[i] = metrics.ExposureAtRank(w.Rank)
	}
}

// mktCellFunc is a resolved marketplace measure: one of emdCell or
// exposureCell, bound once per evaluation.
type mktCellFunc func(part pagePartition, gKey string, compKeys []string, sc *mktScratch) (float64, bool)

// cellFunc resolves the evaluator's measure once per evaluation. An
// out-of-range Measure is reported here — before any worker goroutine
// has started — rather than panicking mid-evaluation (see doc.go on the
// panic-vs-error policy).
func (e *MarketplaceEvaluator) cellFunc() (mktCellFunc, error) {
	switch e.Measure {
	case MeasureEMD:
		return e.emdCell, nil
	case MeasureExposure:
		return e.exposureCell, nil
	default:
		return nil, fmt.Errorf("core: unknown marketplace measure %d", int(e.Measure))
	}
}

// mustCellFunc backs the legacy (float64, bool) single-cell API, which
// has no error channel: a misconfigured Measure panics there.
func (e *MarketplaceEvaluator) mustCellFunc() mktCellFunc {
	cell, err := e.cellFunc()
	if err != nil {
		panic(err)
	}
	return cell
}

// unfairnessCell computes one d<g,q,l> cell from a prebuilt page
// partition and a resolved measure. gKey is g's canonical key, comp its
// comparable groups, and compKeys their canonical keys (nil lets the
// cell derive them, for the single-cell Unfairness path).
func (e *MarketplaceEvaluator) unfairnessCell(cell mktCellFunc, r *MarketplaceRanking, part pagePartition, gKey string, comp []Group, compKeys []string, sc *mktScratch) (float64, bool) {
	if len(r.Workers) == 0 {
		return 0, false
	}
	if compKeys == nil {
		compKeys = make([]string, len(comp))
		for i, cg := range comp {
			compKeys[i] = cg.Key()
		}
	}
	return cell(part, gKey, compKeys, sc)
}

// fillHistogram resets h and adds the relevance of every page member in
// idx, in page order.
func fillHistogram(h *stats.Histogram, rel []float64, idx []int) {
	h.Reset()
	for _, i := range idx {
		h.Add(rel[i])
	}
}

// emdCell implements §3.3.1: average EMD between g's relevance histogram
// and each non-empty comparable group's histogram.
func (e *MarketplaceEvaluator) emdCell(part pagePartition, gKey string, compKeys []string, sc *mktScratch) (float64, bool) {
	members := part[gKey]
	if len(members) == 0 {
		return 0, false
	}
	fillHistogram(sc.hg, sc.rel, members)
	var sum float64
	var n int
	for _, ck := range compKeys {
		cMembers := part[ck]
		if len(cMembers) == 0 {
			continue
		}
		fillHistogram(sc.hc, sc.rel, cMembers)
		sum += metrics.EMDHistograms(sc.hg, sc.hc)
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// exposureCell implements §3.3.2: the L1 deviation of g's exposure share
// from its relevance share, both taken over the population
// g ∪ comparable(g).
//
// Unlike the EMD measure, the exposure formula stays defined when no
// comparable group is on the page: both shares are then g's share of
// itself, 1, and the deviation is 0. This asymmetry is intentional and is
// what makes aggregate exposure unfairness differ between, e.g., Males and
// Females when one gender is absent from some result pages (the paper's
// Table 12, where the two genders' overall values differ even though the
// per-page deviations of two complementary groups are equal).
func (e *MarketplaceEvaluator) exposureCell(part pagePartition, gKey string, compKeys []string, sc *mktScratch) (float64, bool) {
	members := part[gKey]
	if len(members) == 0 {
		return 0, false
	}
	var gExp, gRel float64
	for _, i := range members {
		gExp += sc.exp[i]
		gRel += sc.rel[i]
	}
	totExp, totRel := gExp, gRel
	anyComparable := false
	for _, ck := range compKeys {
		for _, i := range part[ck] {
			totExp += sc.exp[i]
			totRel += sc.rel[i]
			anyComparable = true
		}
	}
	if !anyComparable {
		// g's share of itself is 1 on both sides: deviation 0.
		return 0, true
	}
	return metrics.ExposureDeviation(
		metrics.Share(gExp, totExp),
		metrics.Share(gRel, totRel),
	), true
}

// EvaluateAll computes d<g,q,l> for every ranking and every group,
// producing the unfairness table the indices and problem solvers consume.
// A nil groups slice evaluates the full schema universe.
//
// EvaluateAll is EvaluateAllCtx without a context; it panics on a
// misconfigured Measure (its only error), keeping the original
// infallible signature for the experiment and example call sites.
func (e *MarketplaceEvaluator) EvaluateAll(rankings []*MarketplaceRanking, groups []Group) *Table {
	t, err := e.EvaluateAllCtx(context.Background(), rankings, groups)
	if err != nil {
		panic(err)
	}
	return t
}

// EvaluateAllCtx computes d<g,q,l> for every ranking and every group,
// under a context. A nil groups slice evaluates the full schema
// universe. A misconfigured Measure is returned as an error before any
// work starts; a context that ends mid-evaluation stops every shard at
// its next page boundary and returns ctx.Err().
//
// The work is sharded across Workers goroutines (see the field doc): each
// worker partitions its pages once, fills a private table with its
// contiguous slice of rankings, and the shards are merged in shard order,
// so the result is byte-identical to a single-threaded evaluation.
func (e *MarketplaceEvaluator) EvaluateAllCtx(ctx context.Context, rankings []*MarketplaceRanking, groups []Group) (*Table, error) {
	cell, err := e.cellFunc()
	if err != nil {
		return nil, err
	}
	if groups == nil {
		groups = e.Schema.Universe()
	}
	plan := newEvalPlan(e.Schema, groups)
	run := newEvalMetrics(e.Obs, "market").begin()
	w := BoundedWorkers(e.Workers, len(rankings))
	shards := make([]*Table, w)
	errs := make([]error, w)
	done := ctx.Done()
	// Run the fan-out under pprof labels: the shard goroutines inherit
	// them, so CPU profiles attribute evaluation samples to the evaluator
	// family and measure (and keep any request labels already on ctx).
	defer pprof.SetGoroutineLabels(ctx)
	ctx = pprof.WithLabels(ctx, pprof.Labels("eval", "market", "measure", e.Measure.String()))
	pprof.SetGoroutineLabels(ctx)
	RunSharded(len(rankings), w, func(shard, lo, hi int) {
		start := time.Now()
		cells := 0
		t := getShardTable()
		sc := getMktScratch(e.bins())
		pt := getPartitioner(e.Schema)
		defer func() {
			putMktScratch(sc)
			putPartitioner(pt)
		}()
		for _, r := range rankings[lo:hi] {
			if done != nil {
				select {
				case <-done:
					errs[shard] = ctx.Err()
					return
				default:
				}
			}
			part := pt.ranking(r)
			sc.preparePage(e, r)
			for i := range plan.groups {
				if v, ok := e.unfairnessCell(cell, r, part, plan.keys[i], nil, plan.compKeys[i], sc); ok {
					t.setKeyed(plan.keys[i], plan.groups[i], r.Query, r.Location, v)
					cells++
				}
			}
		}
		shards[shard] = t
		run.shardDone(start, hi-lo, cells)
	})
	for _, err := range errs {
		if err != nil {
			putShardTables(shards, nil)
			return nil, err
		}
	}
	out := MergeTables(shards)
	putShardTables(shards, out)
	run.finish(w)
	return out, nil
}
