package core

import (
	"testing"
)

// toySearch builds a small search-results fixture with hand-computable
// distances:
//
//	bf1 (Black Female): [a b c]     bf2 (Black Female): [a c b]
//	bm1 (Black Male):   [a b c]
//	af1 (Asian Female): [c b a]
//	wf1 (White Female): [x y z]
func toySearch() *SearchResults {
	mk := func(id, gender, ethnicity string, list ...string) UserResults {
		return UserResults{ID: id, Attrs: Assignment{"gender": gender, "ethnicity": ethnicity}, List: list}
	}
	return &SearchResults{
		Query:    "home cleaning",
		Location: "San Francisco, CA",
		Users: []UserResults{
			mk("bf1", "Female", "Black", "a", "b", "c"),
			mk("bf2", "Female", "Black", "a", "c", "b"),
			mk("bm1", "Male", "Black", "a", "b", "c"),
			mk("af1", "Female", "Asian", "c", "b", "a"),
			mk("wf1", "Female", "White", "x", "y", "z"),
		},
	}
}

func TestSearchJaccardHandComputed(t *testing.T) {
	// BF vs BM: identical sets -> 0. BF vs AF: identical sets -> 0.
	// BF vs WF: disjoint -> 1. d = (0+0+1)/3 = 1/3.
	e := &SearchEvaluator{Schema: DefaultSchema(), Measure: MeasureJaccard}
	d, ok := e.Unfairness(toySearch(), blackFemale())
	if !ok || !approx(d, 1.0/3, 1e-12) {
		t.Fatalf("jaccard unfairness = %v, %v; want 1/3", d, ok)
	}
}

func TestSearchKendallHandComputed(t *testing.T) {
	// BF vs BM: pairs (bf1,bm1)=0, (bf2,bm1)=1/3 -> 1/6.
	// BF vs AF: (bf1,af1)=1, (bf2,af1)=2/3 -> 5/6.
	// BF vs WF: disjoint -> 1.
	// d = (1/6 + 5/6 + 1)/3 = 2/3.
	e := &SearchEvaluator{Schema: DefaultSchema(), Measure: MeasureKendallTau}
	d, ok := e.Unfairness(toySearch(), blackFemale())
	if !ok || !approx(d, 2.0/3, 1e-12) {
		t.Fatalf("kendall unfairness = %v, %v; want 2/3", d, ok)
	}
}

func TestSearchPairwiseUnfairness(t *testing.T) {
	// The Figure 3 quantity: partial unfairness between one group and one
	// comparable group.
	e := &SearchEvaluator{Schema: DefaultSchema(), Measure: MeasureKendallTau}
	bm := NewGroup(Predicate{"gender", "Male"}, Predicate{"ethnicity", "Black"})
	d, ok := e.PairwiseUnfairness(toySearch(), blackFemale(), bm)
	if !ok || !approx(d, 1.0/6, 1e-12) {
		t.Fatalf("pairwise = %v, %v; want 1/6", d, ok)
	}
	wm := NewGroup(Predicate{"gender", "Male"}, Predicate{"ethnicity", "White"})
	if _, ok := e.PairwiseUnfairness(toySearch(), blackFemale(), wm); ok {
		t.Fatal("pairwise with empty group should be undefined")
	}
}

func TestSearchUnfairnessUndefinedCases(t *testing.T) {
	e := &SearchEvaluator{Schema: DefaultSchema(), Measure: MeasureJaccard}

	// No users at all.
	if _, ok := e.Unfairness(&SearchResults{}, blackFemale()); ok {
		t.Fatal("empty results should be undefined")
	}

	// Group with users but no comparable users.
	sr := &SearchResults{Users: []UserResults{
		{ID: "u", Attrs: Assignment{"gender": "Female", "ethnicity": "Black"}, List: []string{"a"}},
	}}
	if _, ok := e.Unfairness(sr, blackFemale()); ok {
		t.Fatal("no comparable users should be undefined")
	}
}

func TestSearchIdenticalResultsAreFair(t *testing.T) {
	// When everyone sees the same list, every group's unfairness is 0
	// under both measures — the "no personalization = fair" baseline.
	list := []string{"j1", "j2", "j3", "j4"}
	sr := &SearchResults{Query: "q", Location: "l"}
	for _, g := range DefaultSchema().FullGroups() {
		attrs := Assignment{}
		for _, p := range g.Label {
			attrs[p.Attr] = p.Value
		}
		sr.Users = append(sr.Users, UserResults{ID: g.Key(), Attrs: attrs, List: list})
	}
	for _, m := range []SearchMeasure{MeasureKendallTau, MeasureJaccard} {
		e := &SearchEvaluator{Schema: DefaultSchema(), Measure: m}
		for _, g := range DefaultSchema().Universe() {
			d, ok := e.Unfairness(sr, g)
			if !ok {
				t.Fatalf("%v %s: undefined", m, g.Name())
			}
			if d != 0 {
				t.Fatalf("%v %s: unfairness = %v, want 0", m, g.Name(), d)
			}
		}
	}
}

func TestSearchEvaluateAll(t *testing.T) {
	e := &SearchEvaluator{Schema: DefaultSchema(), Measure: MeasureJaccard}
	tbl := e.EvaluateAll([]*SearchResults{toySearch()}, nil)
	if tbl.Len() == 0 {
		t.Fatal("empty table")
	}
	// White Male has no users and must not appear.
	wm := NewGroup(Predicate{"gender", "Male"}, Predicate{"ethnicity", "White"})
	if _, ok := tbl.Get(wm, "home cleaning", "San Francisco, CA"); ok {
		t.Fatal("group with no users should not be recorded")
	}
	// Black Female appears with the hand-computed value.
	if v, ok := tbl.Get(blackFemale(), "home cleaning", "San Francisco, CA"); !ok || !approx(v, 1.0/3, 1e-12) {
		t.Fatalf("table value = %v, %v", v, ok)
	}
}

func TestSearchMeasureString(t *testing.T) {
	if MeasureKendallTau.String() != "KendallTau" || MeasureJaccard.String() != "Jaccard" {
		t.Fatal("measure names wrong")
	}
	if SearchMeasure(42).String() == "" {
		t.Fatal("unknown measure should render")
	}
}

func TestSearchUnfairnessSymmetricInUsers(t *testing.T) {
	// Shuffling user order must not change the result.
	e := &SearchEvaluator{Schema: DefaultSchema(), Measure: MeasureKendallTau}
	sr := toySearch()
	d1, _ := e.Unfairness(sr, blackFemale())
	reversed := &SearchResults{Query: sr.Query, Location: sr.Location}
	for i := len(sr.Users) - 1; i >= 0; i-- {
		reversed.Users = append(reversed.Users, sr.Users[i])
	}
	d2, _ := e.Unfairness(reversed, blackFemale())
	if !approx(d1, d2, 1e-12) {
		t.Fatalf("user order changed result: %v vs %v", d1, d2)
	}
}
