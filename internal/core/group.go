// Package core implements the paper's fairness framework (§3): protected
// attributes, demographic groups as conjunctions of attribute predicates,
// comparable groups via single-attribute variants, the unfairness measures
// for search engines (§3.2) and online job marketplaces (§3.3), and the
// triple table d<g,q,l> with its aggregations (§3.4).
//
// This package is the "F-Box" of the paper's Figures 6 and 9: crawl results
// go in, unfairness values come out. It is deliberately independent of how
// rankings were produced — the internal/marketplace and internal/search
// simulators, or a real crawl, both feed it the same way.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// Attribute names a protected attribute, e.g. "gender" or "ethnicity".
type Attribute string

// Predicate is an equality constraint attribute = value.
type Predicate struct {
	Attr  Attribute
	Value string
}

func (p Predicate) String() string {
	return fmt.Sprintf("%s=%s", p.Attr, p.Value)
}

// Label is a conjunction of predicates over distinct attributes, the
// paper's label(g). A Label is kept sorted by attribute name so that equal
// conjunctions have equal representations.
type Label []Predicate

// NewLabel builds a canonical Label from predicates. It panics if the same
// attribute appears twice, which would make the conjunction either
// redundant or unsatisfiable.
func NewLabel(preds ...Predicate) Label {
	l := append(Label(nil), preds...)
	sort.Slice(l, func(i, j int) bool { return l[i].Attr < l[j].Attr })
	for i := 1; i < len(l); i++ {
		if l[i].Attr == l[i-1].Attr {
			panic(fmt.Sprintf("core: duplicate attribute %q in label", l[i].Attr))
		}
	}
	return l
}

// Attributes returns A(g): the attributes constrained by the label, in
// sorted order.
func (l Label) Attributes() []Attribute {
	attrs := make([]Attribute, len(l))
	for i, p := range l {
		attrs[i] = p.Attr
	}
	return attrs
}

// ValueOf returns the value the label constrains attr to, and whether the
// label constrains attr at all.
func (l Label) ValueOf(attr Attribute) (string, bool) {
	for _, p := range l {
		if p.Attr == attr {
			return p.Value, true
		}
	}
	return "", false
}

// String renders the conjunction, e.g. "ethnicity=Black ∧ gender=Female".
func (l Label) String() string {
	if len(l) == 0 {
		return "⊤"
	}
	parts := make([]string, len(l))
	for i, p := range l {
		parts[i] = p.String()
	}
	return strings.Join(parts, " ∧ ")
}

// Key returns a canonical machine key for the label, usable as a map key
// and stable across runs.
func (l Label) Key() string {
	if len(l) == 0 {
		return "*"
	}
	parts := make([]string, len(l))
	for i, p := range l {
		parts[i] = string(p.Attr) + "=" + p.Value
	}
	return strings.Join(parts, "&")
}

// Group is a demographic group identified by its label.
type Group struct {
	Label Label
}

// NewGroup builds a group from predicates.
func NewGroup(preds ...Predicate) Group {
	return Group{Label: NewLabel(preds...)}
}

// Key returns the group's canonical key.
func (g Group) Key() string { return g.Label.Key() }

func (g Group) String() string { return g.Label.String() }

// Name returns a human-readable name such as "Black Female" (values joined
// in attribute order), matching how the paper names groups in its tables.
func (g Group) Name() string {
	if len(g.Label) == 0 {
		return "All"
	}
	parts := make([]string, len(g.Label))
	for i, p := range g.Label {
		parts[i] = p.Value
	}
	return strings.Join(parts, " ")
}

// Assignment is a full description of one individual: a value for every
// protected attribute the site tracks.
type Assignment map[Attribute]string

// Matches reports whether an individual with this assignment belongs to
// the group labelled l, i.e. satisfies every predicate.
func (a Assignment) Matches(l Label) bool {
	for _, p := range l {
		if a[p.Attr] != p.Value {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// ParseGroupKey parses a canonical group key of the form
// "attr1=value1&attr2=value2" (the output of Group.Key) back into a
// Group. It returns an error on empty input, malformed predicates or
// duplicate attributes.
func ParseGroupKey(key string) (Group, error) {
	if key == "" || key == "*" {
		return Group{}, fmt.Errorf("core: empty group key")
	}
	parts := strings.Split(key, "&")
	preds := make([]Predicate, 0, len(parts))
	seen := make(map[Attribute]bool, len(parts))
	for _, p := range parts {
		eq := strings.IndexByte(p, '=')
		if eq <= 0 || eq == len(p)-1 {
			return Group{}, fmt.Errorf("core: malformed predicate %q in group key", p)
		}
		attr := Attribute(p[:eq])
		if seen[attr] {
			return Group{}, fmt.Errorf("core: duplicate attribute %q in group key", attr)
		}
		seen[attr] = true
		preds = append(preds, Predicate{Attr: attr, Value: p[eq+1:]})
	}
	return NewGroup(preds...), nil
}
