package core

import (
	"math"
	"testing"
)

// paperRanking reconstructs Tables 2–3 of the paper: ten workers looking
// for a "Home Cleaning" job in San Francisco, with platform scores
// f(w) = 0.9, 0.8, …, 0 in rank order.
func paperRanking() *MarketplaceRanking {
	type row struct {
		id, gender, nationality, ethnicity string
		rank                               int
		score                              float64
	}
	rows := []row{
		{"w3", "Female", "America", "White", 1, 0.9},
		{"w8", "Male", "Other", "Black", 2, 0.8},
		{"w6", "Male", "America", "Black", 3, 0.7},
		{"w2", "Male", "America", "White", 4, 0.6},
		{"w1", "Female", "America", "Asian", 5, 0.5},
		{"w4", "Male", "Other", "Asian", 6, 0.4},
		{"w7", "Female", "America", "Black", 7, 0.3},
		{"w5", "Female", "Other", "Black", 8, 0.2},
		{"w9", "Male", "Other", "White", 9, 0.1},
		{"w10", "Female", "America", "White", 10, 0.0},
	}
	r := &MarketplaceRanking{Query: "Home Cleaning", Location: "San Francisco, CA"}
	for _, row := range rows {
		r.Workers = append(r.Workers, RankedWorker{
			ID:    row.id,
			Attrs: Assignment{"gender": row.gender, "ethnicity": row.ethnicity, "nationality": row.nationality},
			Rank:  row.rank,
			Score: row.score,
		})
	}
	return r
}

func blackFemale() Group {
	return NewGroup(Predicate{"gender", "Female"}, Predicate{"ethnicity", "Black"})
}

// TestExposureMatchesPaperFigure5 reproduces the paper's Figure 5 end to
// end through the evaluator: exposure share 0.19, relevance share 0.15,
// unfairness 0.19 − 0.15 = 0.04.
func TestExposureMatchesPaperFigure5(t *testing.T) {
	e := &MarketplaceEvaluator{Schema: DefaultSchema(), Measure: MeasureExposure}
	d, ok := e.Unfairness(paperRanking(), blackFemale())
	if !ok {
		t.Fatal("unfairness undefined")
	}
	if !approx(d, 0.04, 0.01) {
		t.Fatalf("exposure unfairness = %v, want ≈0.04", d)
	}
}

// With the Table 3 scores being exactly 1 − rank/10, using observed scores
// must agree with rank-derived relevance.
func TestUseScoresAgreesWithRankRelevanceOnPaperExample(t *testing.T) {
	r := paperRanking()
	for _, m := range []MarketplaceMeasure{MeasureEMD, MeasureExposure} {
		byRank := &MarketplaceEvaluator{Schema: DefaultSchema(), Measure: m}
		byScore := &MarketplaceEvaluator{Schema: DefaultSchema(), Measure: m, UseScores: true}
		for _, g := range DefaultSchema().Universe() {
			v1, ok1 := byRank.Unfairness(r, g)
			v2, ok2 := byScore.Unfairness(r, g)
			if ok1 != ok2 || !approx(v1, v2, 1e-9) {
				t.Fatalf("%v %s: rank %v(%v) vs score %v(%v)", m, g.Name(), v1, ok1, v2, ok2)
			}
		}
	}
}

func TestEMDHandComputedExample(t *testing.T) {
	// Two Black Females at ranks 1–2, two Black Males at ranks 3–4.
	// With 2 bins, BF mass is all in the upper bin and BM all in the
	// lower, so EMD = 1; BM is BF's only present comparable group.
	r := &MarketplaceRanking{Query: "q", Location: "l", Workers: []RankedWorker{
		{ID: "f1", Attrs: Assignment{"gender": "Female", "ethnicity": "Black"}, Rank: 1, Score: math.NaN()},
		{ID: "f2", Attrs: Assignment{"gender": "Female", "ethnicity": "Black"}, Rank: 2, Score: math.NaN()},
		{ID: "m1", Attrs: Assignment{"gender": "Male", "ethnicity": "Black"}, Rank: 3, Score: math.NaN()},
		{ID: "m2", Attrs: Assignment{"gender": "Male", "ethnicity": "Black"}, Rank: 4, Score: math.NaN()},
	}}
	e := &MarketplaceEvaluator{Schema: DefaultSchema(), Measure: MeasureEMD, Bins: 2}
	d, ok := e.Unfairness(r, blackFemale())
	if !ok || !approx(d, 1, 1e-12) {
		t.Fatalf("EMD = %v, %v; want 1", d, ok)
	}
}

func TestExposureHandComputedExample(t *testing.T) {
	// Same 4-worker ranking. BF exposure = 1/ln2 + 1/ln3 ≈ 2.3529,
	// BM exposure = 1/ln4 + 1/ln5 ≈ 1.3427; exposure share ≈ 0.6367.
	// BF relevance = 0.75+0.5 = 1.25 of total 1.5; share ≈ 0.8333.
	// Deviation ≈ 0.1966.
	r := &MarketplaceRanking{Query: "q", Location: "l", Workers: []RankedWorker{
		{ID: "f1", Attrs: Assignment{"gender": "Female", "ethnicity": "Black"}, Rank: 1, Score: math.NaN()},
		{ID: "f2", Attrs: Assignment{"gender": "Female", "ethnicity": "Black"}, Rank: 2, Score: math.NaN()},
		{ID: "m1", Attrs: Assignment{"gender": "Male", "ethnicity": "Black"}, Rank: 3, Score: math.NaN()},
		{ID: "m2", Attrs: Assignment{"gender": "Male", "ethnicity": "Black"}, Rank: 4, Score: math.NaN()},
	}}
	e := &MarketplaceEvaluator{Schema: DefaultSchema(), Measure: MeasureExposure}
	d, ok := e.Unfairness(r, blackFemale())
	if !ok || !approx(d, 0.1966, 1e-3) {
		t.Fatalf("exposure = %v, %v; want ≈0.1966", d, ok)
	}
}

func TestUnfairnessUndefinedCases(t *testing.T) {
	e := &MarketplaceEvaluator{Schema: DefaultSchema(), Measure: MeasureEMD}

	// Empty ranking.
	if _, ok := e.Unfairness(&MarketplaceRanking{}, blackFemale()); ok {
		t.Fatal("empty ranking should be undefined")
	}

	// Group absent from the page.
	onlyMales := &MarketplaceRanking{Query: "q", Location: "l", Workers: []RankedWorker{
		{ID: "m", Attrs: Assignment{"gender": "Male", "ethnicity": "White"}, Rank: 1, Score: math.NaN()},
	}}
	if _, ok := e.Unfairness(onlyMales, blackFemale()); ok {
		t.Fatal("absent group should be undefined")
	}

	// Group present but no comparable group on the page: EMD has nothing
	// to average over (undefined), while the exposure formula collapses
	// to shares of 1 and 1, i.e. a defined unfairness of 0.
	onlyBF := &MarketplaceRanking{Query: "q", Location: "l", Workers: []RankedWorker{
		{ID: "f", Attrs: Assignment{"gender": "Female", "ethnicity": "Black"}, Rank: 1, Score: math.NaN()},
	}}
	if _, ok := (&MarketplaceEvaluator{Schema: DefaultSchema(), Measure: MeasureEMD}).Unfairness(onlyBF, blackFemale()); ok {
		t.Fatal("EMD: group with no comparables should be undefined")
	}
	expo := &MarketplaceEvaluator{Schema: DefaultSchema(), Measure: MeasureExposure}
	if d, ok := expo.Unfairness(onlyBF, blackFemale()); !ok || d != 0 {
		t.Fatalf("exposure with no comparables = %v, %v; want 0, true", d, ok)
	}
}

func TestUnfairnessBounds(t *testing.T) {
	r := paperRanking()
	for _, m := range []MarketplaceMeasure{MeasureEMD, MeasureExposure} {
		e := &MarketplaceEvaluator{Schema: DefaultSchema(), Measure: m}
		for _, g := range DefaultSchema().Universe() {
			if d, ok := e.Unfairness(r, g); ok && (d < 0 || d > 1) {
				t.Fatalf("%v %s: unfairness %v out of [0,1]", m, g.Name(), d)
			}
		}
	}
}

func TestEvaluateAllBuildsTable(t *testing.T) {
	e := &MarketplaceEvaluator{Schema: DefaultSchema(), Measure: MeasureEMD}
	tbl := e.EvaluateAll([]*MarketplaceRanking{paperRanking()}, nil)
	if len(tbl.Queries()) != 1 || len(tbl.Locations()) != 1 {
		t.Fatalf("table dims: %v / %v", tbl.Queries(), tbl.Locations())
	}
	// All 11 universe groups have members and comparables on the paper
	// page (every gender×ethnicity combination appears).
	if got := len(tbl.Groups()); got != 11 {
		t.Fatalf("groups in table = %d, want 11", got)
	}
}

func TestMeasureString(t *testing.T) {
	if MeasureEMD.String() != "EMD" || MeasureExposure.String() != "Exposure" {
		t.Fatal("measure names wrong")
	}
	if MarketplaceMeasure(99).String() == "" {
		t.Fatal("unknown measure should still render")
	}
}

func TestRelevanceHonorsScores(t *testing.T) {
	r := &MarketplaceRanking{Workers: []RankedWorker{
		{ID: "a", Rank: 1, Score: 0.42},
		{ID: "b", Rank: 2, Score: math.NaN()},
	}}
	if got := r.Relevance(r.Workers[0], true); got != 0.42 {
		t.Fatalf("score relevance = %v", got)
	}
	if got := r.Relevance(r.Workers[0], false); got != 0.5 {
		t.Fatalf("rank relevance = %v", got)
	}
	// NaN score falls back to rank even with UseScores.
	if got := r.Relevance(r.Workers[1], true); got != 0 {
		t.Fatalf("NaN-score relevance = %v", got)
	}
}
