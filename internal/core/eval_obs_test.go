package core

import (
	"testing"

	"fairjob/internal/obs"
)

// TestMarketplaceEvalTelemetry runs EvaluateAll with a registry attached
// and checks that the eval="market" metric family reflects the work
// actually done: every page counted once, one run, a shard-duration
// sample per shard, and a plausible utilization gauge.
func TestMarketplaceEvalTelemetry(t *testing.T) {
	rankings := genRankings(40)
	reg := obs.NewRegistry()
	ev := &MarketplaceEvaluator{Schema: DefaultSchema(), Measure: MeasureEMD, Workers: 4, Obs: reg}
	tbl := ev.EvaluateAll(rankings, nil)

	s := reg.Snapshot()
	pages := obs.Name("eval_pages_total", "eval", "market")
	if got := s.Counters[pages]; got != uint64(len(rankings)) {
		t.Fatalf("%s = %d, want %d", pages, got, len(rankings))
	}
	// The counter tallies every defined cell computed; duplicate (query,
	// location) pages overwrite table entries, so it bounds the table
	// size from above.
	cells := obs.Name("eval_cells_total", "eval", "market")
	if got := s.Counters[cells]; got < uint64(tbl.Len()) || got == 0 {
		t.Fatalf("%s = %d, want ≥ table size %d", cells, got, tbl.Len())
	}
	if got := s.Counters[obs.Name("eval_runs_total", "eval", "market")]; got != 1 {
		t.Fatalf("runs = %d, want 1", got)
	}
	w := BoundedWorkers(4, len(rankings))
	if got := s.Gauges[obs.Name("eval_workers", "eval", "market")]; got != float64(w) {
		t.Fatalf("workers gauge = %g, want %d", got, w)
	}
	h := s.Histograms[obs.Name("eval_shard_seconds", "eval", "market")]
	if h.Count != uint64(w) {
		t.Fatalf("shard histogram count = %d, want one sample per shard (%d)", h.Count, w)
	}
	util := s.Gauges[obs.Name("eval_worker_utilization", "eval", "market")]
	if util <= 0 || util > 1.5 { // clock skew can nudge it past 1, never far
		t.Fatalf("utilization = %g, want in (0, 1.5]", util)
	}

	// A second run accumulates counters and replaces run-level gauges.
	ev.EvaluateAll(rankings, nil)
	s = reg.Snapshot()
	if got := s.Counters[pages]; got != 2*uint64(len(rankings)) {
		t.Fatalf("pages after second run = %d, want %d", got, 2*len(rankings))
	}
	if got := s.Counters[obs.Name("eval_runs_total", "eval", "market")]; got != 2 {
		t.Fatalf("runs = %d, want 2", got)
	}
}

// TestSearchEvalTelemetry checks the search family plus the
// distance-cache hit/miss counters: with every (group, comparable) pair
// sharing user pairs, the memo must report both hits and misses, and
// misses must equal the unique unordered pairs actually measured.
func TestSearchEvalTelemetry(t *testing.T) {
	results := genSearchResults(25)
	reg := obs.NewRegistry()
	ev := &SearchEvaluator{Schema: DefaultSchema(), Measure: MeasureKendallTau, Workers: 3, Obs: reg}
	tbl := ev.EvaluateAll(results, nil)

	s := reg.Snapshot()
	if got := s.Counters[obs.Name("eval_pages_total", "eval", "search")]; got != uint64(len(results)) {
		t.Fatalf("pages = %d, want %d", got, len(results))
	}
	if got := s.Counters[obs.Name("eval_cells_total", "eval", "search")]; got < uint64(tbl.Len()) || got == 0 {
		t.Fatalf("cells = %d, want ≥ %d", got, tbl.Len())
	}
	hits := s.Counters["eval_distcache_hits_total"]
	misses := s.Counters["eval_distcache_misses_total"]
	if hits == 0 || misses == 0 {
		t.Fatalf("distance cache hits/misses = %d/%d, want both non-zero", hits, misses)
	}
	// The schema's overlapping group hierarchy guarantees heavy reuse:
	// hits must dominate misses on this workload.
	if hits < misses {
		t.Fatalf("distance cache hits %d < misses %d — memo not effective", hits, misses)
	}
}

// TestEvalTelemetryDisabledByDefault ensures a nil registry keeps the
// evaluators telemetry-free (the zero-value path every existing caller
// takes).
func TestEvalTelemetryDisabledByDefault(t *testing.T) {
	ev := &MarketplaceEvaluator{Schema: DefaultSchema(), Measure: MeasureEMD, Workers: 2}
	ev.EvaluateAll(genRankings(10), nil) // must not panic
	sev := &SearchEvaluator{Schema: DefaultSchema(), Measure: MeasureJaccard, Workers: 2}
	sev.EvaluateAll(genSearchResults(8), nil)
}
