package core

import (
	"fmt"
	"testing"

	"fairjob/internal/stats"
)

// The determinism contract of the sharded pipeline: EvaluateAll at any
// worker count produces a table byte-identical to the serial reference
// (the naive nested loop over Unfairness), for both evaluators and all
// measures. "Byte-identical" means exact float64 equality per triple, not
// approximate — the parallel path must replay the serial arithmetic.

// genRankings synthesizes a crawl with deliberately uneven pages: some
// pages miss entire groups (exercising the undefined-cell paths), some
// queries repeat a (query, location) pair (exercising the shard-order
// overwrite invariant), and attribute values occasionally fall outside
// the schema domain (exercising partition behaviour for unknown values).
func genRankings(n int) []*MarketplaceRanking {
	rng := stats.NewRNG(42)
	genders := []string{"Male", "Female"}
	ethnicities := []string{"Asian", "Black", "White", "Other"} // "Other" is outside the schema
	out := make([]*MarketplaceRanking, n)
	for i := range out {
		r := &MarketplaceRanking{
			Query:    Query(fmt.Sprintf("q%d", rng.Intn(n/2+1))),
			Location: Location(fmt.Sprintf("l%d", rng.Intn(5))),
		}
		for w := 0; w < 1+rng.Intn(12); w++ {
			r.Workers = append(r.Workers, RankedWorker{
				ID: fmt.Sprintf("w%d-%d", i, w),
				Attrs: Assignment{
					"gender":    genders[rng.Intn(len(genders))],
					"ethnicity": ethnicities[rng.Intn(len(ethnicities))],
				},
				Rank:  w + 1,
				Score: rng.Float64(),
			})
		}
		out[i] = r
	}
	return out
}

// genSearchResults synthesizes study sweeps with overlapping shuffled
// result lists so both Kendall Tau and Jaccard exercise nontrivial
// intersections.
func genSearchResults(n int) []*SearchResults {
	rng := stats.NewRNG(99)
	genders := []string{"Male", "Female"}
	ethnicities := []string{"Asian", "Black", "White"}
	out := make([]*SearchResults, n)
	for i := range out {
		sr := &SearchResults{
			Query:    Query(fmt.Sprintf("q%d", rng.Intn(n/2+1))),
			Location: Location(fmt.Sprintf("l%d", rng.Intn(4))),
		}
		for u := 0; u < 2+rng.Intn(10); u++ {
			list := make([]string, 0, 8)
			for _, p := range rng.Perm(12)[:8] {
				list = append(list, fmt.Sprintf("job%d", p))
			}
			sr.Users = append(sr.Users, UserResults{
				ID: fmt.Sprintf("u%d-%d", i, u),
				Attrs: Assignment{
					"gender":    genders[rng.Intn(len(genders))],
					"ethnicity": ethnicities[rng.Intn(len(ethnicities))],
				},
				List: list,
			})
		}
		out[i] = sr
	}
	return out
}

// requireTablesIdentical fails unless the two tables hold exactly the
// same triples with exactly equal values.
func requireTablesIdentical(t *testing.T, want, got *Table) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("table size: want %d triples, got %d", want.Len(), got.Len())
	}
	want.Range(func(tr Triple, v float64) {
		gv, ok := got.GetKey(tr.GroupKey, tr.Query, tr.Location)
		if !ok {
			t.Fatalf("triple %v missing", tr)
		}
		if gv != v {
			t.Fatalf("triple %v: want %v, got %v (not byte-identical)", tr, v, gv)
		}
	})
	if lw, lg := len(want.Groups()), len(got.Groups()); lw != lg {
		t.Fatalf("group dimension: want %d, got %d", lw, lg)
	}
	if lw, lg := len(want.Queries()), len(got.Queries()); lw != lg {
		t.Fatalf("query dimension: want %d, got %d", lw, lg)
	}
	if lw, lg := len(want.Locations()), len(got.Locations()); lw != lg {
		t.Fatalf("location dimension: want %d, got %d", lw, lg)
	}
}

func TestMarketplaceEvaluateAllDeterministicAcrossWorkers(t *testing.T) {
	rankings := genRankings(60)
	schema := DefaultSchema()
	for _, measure := range []MarketplaceMeasure{MeasureEMD, MeasureExposure} {
		t.Run(measure.String(), func(t *testing.T) {
			// Serial reference: the naive nested loop over Unfairness.
			serial := NewTable()
			ref := &MarketplaceEvaluator{Schema: schema, Measure: measure}
			for _, r := range rankings {
				for _, g := range schema.Universe() {
					if v, ok := ref.Unfairness(r, g); ok {
						serial.Set(g, r.Query, r.Location, v)
					}
				}
			}
			for _, workers := range []int{1, 2, 8} {
				ev := &MarketplaceEvaluator{Schema: schema, Measure: measure, Workers: workers}
				requireTablesIdentical(t, serial, ev.EvaluateAll(rankings, nil))
			}
		})
	}
}

func TestSearchEvaluateAllDeterministicAcrossWorkers(t *testing.T) {
	results := genSearchResults(40)
	schema := DefaultSchema()
	for _, measure := range []SearchMeasure{MeasureKendallTau, MeasureJaccard} {
		t.Run(measure.String(), func(t *testing.T) {
			serial := NewTable()
			ref := &SearchEvaluator{Schema: schema, Measure: measure}
			for _, sr := range results {
				for _, g := range schema.Universe() {
					if v, ok := ref.Unfairness(sr, g); ok {
						serial.Set(g, sr.Query, sr.Location, v)
					}
				}
			}
			for _, workers := range []int{1, 2, 8} {
				ev := &SearchEvaluator{Schema: schema, Measure: measure, Workers: workers}
				requireTablesIdentical(t, serial, ev.EvaluateAll(results, nil))
			}
		})
	}
}

// TestPartitionMatchesNaiveMembership cross-checks the partition against
// Assignment.Matches for every universe group, including workers whose
// ethnicity falls outside the schema domain.
func TestPartitionMatchesNaiveMembership(t *testing.T) {
	schema := DefaultSchema()
	for _, r := range genRankings(20) {
		part := partitionRanking(schema, r)
		for _, g := range schema.Universe() {
			var naive []int
			for i, w := range r.Workers {
				if w.Attrs.Matches(g.Label) {
					naive = append(naive, i)
				}
			}
			got := part[g.Key()]
			if len(got) != len(naive) {
				t.Fatalf("group %s: partition %v vs naive %v", g.Name(), got, naive)
			}
			for i := range got {
				if got[i] != naive[i] {
					t.Fatalf("group %s: partition order %v vs naive %v", g.Name(), got, naive)
				}
			}
		}
	}
}

func TestTableMergeDisjointShards(t *testing.T) {
	g1 := NewGroup(Predicate{"gender", "Male"})
	g2 := NewGroup(Predicate{"gender", "Female"})
	a, b := NewTable(), NewTable()
	a.Set(g1, "q1", "l1", 0.1)
	b.Set(g2, "q2", "l2", 0.2)
	a.Merge(b)
	if a.Len() != 2 {
		t.Fatalf("merged len = %d, want 2", a.Len())
	}
	if v, ok := a.Get(g1, "q1", "l1"); !ok || v != 0.1 {
		t.Fatalf("g1 = %v,%v", v, ok)
	}
	if v, ok := a.Get(g2, "q2", "l2"); !ok || v != 0.2 {
		t.Fatalf("g2 = %v,%v", v, ok)
	}
	if len(a.Groups()) != 2 || len(a.Queries()) != 2 || len(a.Locations()) != 2 {
		t.Fatalf("merged dimensions = %d groups × %d queries × %d locations, want 2×2×2",
			len(a.Groups()), len(a.Queries()), len(a.Locations()))
	}
	// b must be untouched by the merge.
	if b.Len() != 1 {
		t.Fatalf("merge mutated its argument: len = %d", b.Len())
	}
}

func TestTableMergeOverlappingShardsLaterWins(t *testing.T) {
	g := NewGroup(Predicate{"gender", "Male"})
	a, b := NewTable(), NewTable()
	a.Set(g, "q", "l", 0.1)
	a.Set(g, "q", "l2", 0.3)
	b.Set(g, "q", "l", 0.9) // overlaps a's triple
	a.Merge(b)
	if a.Len() != 2 {
		t.Fatalf("merged len = %d, want 2", a.Len())
	}
	if v, _ := a.Get(g, "q", "l"); v != 0.9 {
		t.Fatalf("overlap = %v, want the merged-in 0.9 (later shard wins)", v)
	}
	if v, _ := a.Get(g, "q", "l2"); v != 0.3 {
		t.Fatalf("untouched triple = %v, want 0.3", v)
	}
}

func TestTableMergeNilIsNoOp(t *testing.T) {
	g := NewGroup(Predicate{"gender", "Male"})
	a := NewTable()
	a.Set(g, "q", "l", 0.5)
	a.Merge(nil)
	if a.Len() != 1 {
		t.Fatalf("len = %d after nil merge, want 1", a.Len())
	}
}
