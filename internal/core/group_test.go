package core

import (
	"testing"
)

func TestNewLabelCanonicalOrder(t *testing.T) {
	l1 := NewLabel(Predicate{"gender", "Male"}, Predicate{"ethnicity", "Black"})
	l2 := NewLabel(Predicate{"ethnicity", "Black"}, Predicate{"gender", "Male"})
	if l1.Key() != l2.Key() {
		t.Fatalf("labels not canonical: %q vs %q", l1.Key(), l2.Key())
	}
	if l1.Key() != "ethnicity=Black&gender=Male" {
		t.Fatalf("unexpected key %q", l1.Key())
	}
}

func TestNewLabelDuplicateAttributePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLabel(Predicate{"gender", "Male"}, Predicate{"gender", "Female"})
}

func TestLabelAttributesAndValueOf(t *testing.T) {
	l := NewLabel(Predicate{"gender", "Female"}, Predicate{"ethnicity", "Asian"})
	attrs := l.Attributes()
	if len(attrs) != 2 || attrs[0] != "ethnicity" || attrs[1] != "gender" {
		t.Fatalf("Attributes = %v", attrs)
	}
	if v, ok := l.ValueOf("gender"); !ok || v != "Female" {
		t.Fatalf("ValueOf(gender) = %q, %v", v, ok)
	}
	if _, ok := l.ValueOf("age"); ok {
		t.Fatal("ValueOf(age) should be absent")
	}
}

func TestLabelString(t *testing.T) {
	if got := (Label{}).String(); got != "⊤" {
		t.Fatalf("empty label String = %q", got)
	}
	l := NewLabel(Predicate{"gender", "Male"})
	if got := l.String(); got != "gender=Male" {
		t.Fatalf("String = %q", got)
	}
}

func TestGroupName(t *testing.T) {
	g := NewGroup(Predicate{"gender", "Female"}, Predicate{"ethnicity", "Black"})
	// Attribute order is sorted: ethnicity before gender -> "Black Female".
	if got := g.Name(); got != "Black Female" {
		t.Fatalf("Name = %q", got)
	}
	if got := NewGroup().Name(); got != "All" {
		t.Fatalf("empty group Name = %q", got)
	}
}

func TestAssignmentMatches(t *testing.T) {
	a := Assignment{"gender": "Female", "ethnicity": "Black", "nationality": "America"}
	if !a.Matches(NewLabel(Predicate{"gender", "Female"})) {
		t.Fatal("should match gender=Female")
	}
	if !a.Matches(NewLabel(Predicate{"gender", "Female"}, Predicate{"ethnicity", "Black"})) {
		t.Fatal("should match conjunction")
	}
	if a.Matches(NewLabel(Predicate{"gender", "Male"})) {
		t.Fatal("should not match gender=Male")
	}
	if !a.Matches(Label{}) {
		t.Fatal("empty label matches everyone")
	}
}

func TestAssignmentClone(t *testing.T) {
	a := Assignment{"gender": "Male"}
	b := a.Clone()
	b["gender"] = "Female"
	if a["gender"] != "Male" {
		t.Fatal("Clone aliases the original")
	}
}

func TestParseGroupKeyRoundTrip(t *testing.T) {
	for _, g := range DefaultSchema().Universe() {
		parsed, err := ParseGroupKey(g.Key())
		if err != nil {
			t.Fatalf("%s: %v", g.Key(), err)
		}
		if parsed.Key() != g.Key() {
			t.Fatalf("round trip %q -> %q", g.Key(), parsed.Key())
		}
	}
	// Order-insensitive.
	g, err := ParseGroupKey("gender=Male&ethnicity=Black")
	if err != nil || g.Name() != "Black Male" {
		t.Fatalf("parse = %v, %v", g, err)
	}
}

func TestParseGroupKeyErrors(t *testing.T) {
	for _, bad := range []string{"", "*", "gender", "=Male", "gender=", "gender=Male&gender=Female"} {
		if _, err := ParseGroupKey(bad); err == nil {
			t.Errorf("ParseGroupKey(%q) should error", bad)
		}
	}
}
