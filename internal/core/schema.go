package core

import (
	"fmt"
	"sort"
	"sync"
)

// Schema declares the protected attributes a site tracks and their value
// domains. The paper's case study uses gender = {Male, Female} and
// ethnicity = {Asian, Black, White}; the framework is generic over any
// schema (§3.1 allows "any combination of protected attributes").
//
// A Schema is immutable after NewSchema and safe for concurrent use: the
// group-enumeration methods (Universe, Comparable, GroupByName) memoize
// their results behind internal locks, which is what makes them cheap
// enough to sit on the evaluators' per-(page, group) hot path.
type Schema struct {
	attrs   []Attribute
	domains map[Attribute][]string

	univOnce sync.Once
	univ     []Group          // memoized Universe(), sorted by key
	byName   map[string]Group // memoized Name() → Group index over univ

	cmpMu    sync.RWMutex
	cmpCache map[string][]Group // group key → memoized Comparable(g)
}

// NewSchema builds a schema. Attribute iteration order is the sorted
// attribute-name order, so group enumeration is deterministic. NewSchema
// panics on an empty schema, an empty domain, or duplicate values, all of
// which indicate a configuration bug.
func NewSchema(domains map[Attribute][]string) *Schema {
	if len(domains) == 0 {
		panic("core: schema needs at least one attribute")
	}
	s := &Schema{domains: make(map[Attribute][]string, len(domains))}
	for attr, values := range domains {
		if len(values) == 0 {
			panic(fmt.Sprintf("core: attribute %q has empty domain", attr))
		}
		seen := make(map[string]bool, len(values))
		for _, v := range values {
			if seen[v] {
				panic(fmt.Sprintf("core: attribute %q has duplicate value %q", attr, v))
			}
			seen[v] = true
		}
		s.attrs = append(s.attrs, attr)
		s.domains[attr] = append([]string(nil), values...)
	}
	sort.Slice(s.attrs, func(i, j int) bool { return s.attrs[i] < s.attrs[j] })
	return s
}

// DefaultSchema returns the paper's case-study schema:
// ethnicity ∈ {Asian, Black, White}, gender ∈ {Male, Female}.
func DefaultSchema() *Schema {
	return NewSchema(map[Attribute][]string{
		"gender":    {"Male", "Female"},
		"ethnicity": {"Asian", "Black", "White"},
	})
}

// Attributes returns the schema's attributes in canonical order.
func (s *Schema) Attributes() []Attribute {
	return append([]Attribute(nil), s.attrs...)
}

// Domain returns the value domain of attr, or nil if the schema does not
// track attr.
func (s *Schema) Domain(attr Attribute) []string {
	return append([]string(nil), s.domains[attr]...)
}

// Has reports whether the schema tracks attr.
func (s *Schema) Has(attr Attribute) bool {
	_, ok := s.domains[attr]
	return ok
}

// Universe enumerates every group expressible over the schema: all
// conjunctions over a non-empty subset of attributes with one value per
// chosen attribute. For the default gender×ethnicity schema this yields
// the 11 groups of the paper's Table 8 (6 full combinations + 3
// ethnicity-only + 2 gender-only).
//
// The result is computed once per schema and shared between callers; it
// must not be modified.
func (s *Schema) Universe() []Group {
	s.univOnce.Do(func() {
		var out []Group
		n := len(s.attrs)
		// Iterate attribute subsets via bitmask; skip the empty subset.
		for mask := 1; mask < 1<<n; mask++ {
			var chosen []Attribute
			for i, attr := range s.attrs {
				if mask&(1<<i) != 0 {
					chosen = append(chosen, attr)
				}
			}
			out = append(out, s.expand(chosen, nil)...)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
		s.univ = out
		s.byName = make(map[string]Group, len(out))
		for _, g := range out {
			// Keep the first group in universe order on a name clash,
			// matching what a linear scan over Universe() returned.
			if _, dup := s.byName[g.Name()]; !dup {
				s.byName[g.Name()] = g
			}
		}
	})
	return s.univ
}

func (s *Schema) expand(attrs []Attribute, prefix []Predicate) []Group {
	if len(attrs) == 0 {
		return []Group{NewGroup(prefix...)}
	}
	var out []Group
	attr := attrs[0]
	for _, v := range s.domains[attr] {
		out = append(out, s.expand(attrs[1:], append(append([]Predicate(nil), prefix...), Predicate{attr, v}))...)
	}
	return out
}

// FullGroups enumerates only the groups that constrain every attribute
// (the finest partition — 6 groups for the default schema).
func (s *Schema) FullGroups() []Group {
	return s.expand(s.attrs, nil)
}

// Variants returns variants(g, attr): all groups whose label agrees with
// g's everywhere except on attr, where it takes each *other* domain value
// (§3.1). The result is empty when g's label does not constrain attr.
func (s *Schema) Variants(g Group, attr Attribute) []Group {
	cur, ok := g.Label.ValueOf(attr)
	if !ok {
		return nil
	}
	var out []Group
	for _, v := range s.domains[attr] {
		if v == cur {
			continue
		}
		preds := make([]Predicate, 0, len(g.Label))
		for _, p := range g.Label {
			if p.Attr == attr {
				preds = append(preds, Predicate{attr, v})
			} else {
				preds = append(preds, p)
			}
		}
		out = append(out, NewGroup(preds...))
	}
	return out
}

// Comparable returns g's comparable groups: the union of variants(g, a)
// over all attributes a ∈ A(g). For "Black Female" under the default
// schema this is {Black Male, Asian Female, White Female}, exactly the
// paper's §1 example.
//
// The evaluators call Comparable once per (result page, group) cell, so
// the result is memoized per group key and shared between callers; it
// must not be modified.
func (s *Schema) Comparable(g Group) []Group {
	key := g.Key()
	s.cmpMu.RLock()
	cached, ok := s.cmpCache[key]
	s.cmpMu.RUnlock()
	if ok {
		return cached
	}
	var out []Group
	for _, attr := range g.Label.Attributes() {
		out = append(out, s.Variants(g, attr)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	s.cmpMu.Lock()
	if s.cmpCache == nil {
		s.cmpCache = make(map[string][]Group)
	}
	s.cmpCache[key] = out
	s.cmpMu.Unlock()
	return out
}

// GroupByName finds the universe group whose Name() equals name (e.g.
// "Asian Female" or "Male"). The boolean reports whether it exists. The
// lookup uses the memoized name index built alongside Universe().
func (s *Schema) GroupByName(name string) (Group, bool) {
	s.Universe() // ensure the name index is built
	g, ok := s.byName[name]
	return g, ok
}
