package core

// This file implements the per-page group partition the evaluators use on
// their hot path. The naive membership test scans the whole result page
// once per group and again per comparable group, so a page is scanned
// O(|universe| × (1 + |comparable|)) times; the partition scans it once,
// bucketing every individual under every group key it belongs to, and all
// subsequent lookups are map hits.

// pagePartition maps a group key (Label.Key form) to the page positions of
// the individuals belonging to that group, in page order. Lookups for
// groups with no members on the page yield an empty slice. A partition is
// valid until its partitioner builds the next page.
type pagePartition map[string][]int

// partitioner buckets one result page at a time, interning every string it
// builds so that after warm-up a page costs no key allocations: attribute
// fragments ("gender=Male"), full-assignment keys, and the 2^a − 1 bucket
// keys per distinct assignment are all computed once and reused. The
// partition map itself is also reused between pages, truncating member
// slices in place. A partitioner belongs to one goroutine; each evaluation
// worker creates its own.
type partitioner struct {
	s       *Schema
	frags   []map[string]string // per attribute: value → "attr=value"
	buckets map[string][]string // full-assignment key → its 2^a − 1 group keys
	scratch []string            // per-attribute fragments of the current individual
	buf     []byte              // reusable full-assignment key buffer
	part    pagePartition       // reused output map
}

func newPartitioner(s *Schema) *partitioner {
	p := &partitioner{
		s:       s,
		frags:   make([]map[string]string, len(s.attrs)),
		buckets: make(map[string][]string),
		scratch: make([]string, len(s.attrs)),
		part:    make(pagePartition),
	}
	for i := range p.frags {
		p.frags[i] = make(map[string]string)
	}
	return p
}

// page buckets n individuals under every group expressible over the
// schema. For individual i, attrsOf(i) is its attribute assignment; i is
// appended to the bucket of every non-empty attribute subset restricted
// to its own values. s.attrs is sorted and masks append fragments in
// attribute order, so each bucket key equals Label.Key() of the
// corresponding group.
//
// An individual whose value for some attribute falls outside the schema's
// domain lands under a key no universe group carries, which reproduces
// the naive scan's behaviour: it simply never matches a group
// constraining that attribute.
//
// The returned partition is owned by the partitioner and overwritten by
// the next page call.
func (p *partitioner) page(n int, attrsOf func(int) Assignment) pagePartition {
	// Truncate in place rather than reallocate: stale keys keep their
	// (empty) slices and read as "no members", and warm slices keep
	// their capacity.
	for k, v := range p.part {
		p.part[k] = v[:0]
	}
	for i := 0; i < n; i++ {
		a := attrsOf(i)
		p.buf = p.buf[:0]
		for j, attr := range p.s.attrs {
			v := a[attr]
			f, ok := p.frags[j][v]
			if !ok {
				f = string(attr) + "=" + v
				p.frags[j][v] = f
			}
			p.scratch[j] = f
			if j > 0 {
				p.buf = append(p.buf, '&')
			}
			p.buf = append(p.buf, f...)
		}
		// The full-assignment key is the all-attributes bucket key, so
		// it doubles as the interning key. The string(p.buf) lookup
		// does not allocate; the conversion is only materialized on a
		// miss.
		keys, ok := p.buckets[string(p.buf)]
		if !ok {
			keys = maskKeys(p.scratch)
			p.buckets[string(p.buf)] = keys
		}
		for _, key := range keys {
			p.part[key] = append(p.part[key], i)
		}
	}
	return p.part
}

// maskKeys enumerates the group keys of every non-empty subset of the
// given (attribute-ordered) fragments.
func maskKeys(frags []string) []string {
	n := len(frags)
	out := make([]string, 0, 1<<n-1)
	for mask := 1; mask < 1<<n; mask++ {
		key := ""
		for j := 0; j < n; j++ {
			if mask&(1<<j) == 0 {
				continue
			}
			if key == "" {
				key = frags[j]
			} else {
				key += "&" + frags[j]
			}
		}
		out = append(out, key)
	}
	return out
}

// ranking partitions a marketplace result page by worker demographics.
func (p *partitioner) ranking(r *MarketplaceRanking) pagePartition {
	return p.page(len(r.Workers), func(i int) Assignment { return r.Workers[i].Attrs })
}

// users partitions a search study's participants by user demographics.
func (p *partitioner) users(sr *SearchResults) pagePartition {
	return p.page(len(sr.Users), func(i int) Assignment { return sr.Users[i].Attrs })
}

// partitionRanking is the single-page convenience form of
// partitioner.ranking, for callers without a reusable partitioner.
func partitionRanking(s *Schema, r *MarketplaceRanking) pagePartition {
	return newPartitioner(s).ranking(r)
}

// partitionUsers is the single-page convenience form of partitioner.users.
func partitionUsers(s *Schema, sr *SearchResults) pagePartition {
	return newPartitioner(s).users(sr)
}
