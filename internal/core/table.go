package core

import (
	"fmt"
	"sort"
)

// Query is a job-related query (a job category on TaskRabbit, a search
// formulation on Google job search).
type Query string

// Location is a geographic location such as "San Francisco, CA".
type Location string

// Triple identifies one unfairness value d<g,q,l>. GroupKey is the
// canonical key of the group's label.
type Triple struct {
	GroupKey string
	Query    Query
	Location Location
}

// Table stores unfairness values d<g,q,l> for every evaluated triple. It
// is the substrate the three index families and both problem solvers read
// from. A Table is cheap to copy by reference; it is not safe for
// concurrent mutation. Concurrent writers must each fill a private table
// and combine them with Merge, which is how the evaluators' sharded
// EvaluateAll pipelines work.
type Table struct {
	values map[Triple]float64
	groups map[string]Group
	qs     map[Query]struct{}
	ls     map[Location]struct{}
}

// NewTable returns an empty unfairness table.
func NewTable() *Table {
	return NewTableSized(0, 0, 0, 0)
}

// NewTableSized returns an empty table whose maps are presized for the
// given entry counts. Sizing is a capacity hint, not a bound — the table
// still grows past it — but a writer that knows its cardinalities up
// front (the sharded evaluators' merge step, a bulk loader) avoids every
// incremental rehash of the fill.
func NewTableSized(values, groups, qs, ls int) *Table {
	return &Table{
		values: make(map[Triple]float64, values),
		groups: make(map[string]Group, groups),
		qs:     make(map[Query]struct{}, qs),
		ls:     make(map[Location]struct{}, ls),
	}
}

// Set records d<g,q,l> = v, overwriting any previous value.
func (t *Table) Set(g Group, q Query, l Location, v float64) {
	t.setKeyed(g.Key(), g, q, l, v)
}

// setKeyed is Set for hot paths that already hold g's canonical key,
// avoiding the string construction of Group.Key.
func (t *Table) setKeyed(key string, g Group, q Query, l Location, v float64) {
	t.values[Triple{key, q, l}] = v
	t.groups[key] = g
	t.qs[q] = struct{}{}
	t.ls[l] = struct{}{}
}

// Merge copies every triple of other into t, overwriting values t already
// holds for the same triple. It is the combination step of the sharded
// evaluation pipeline: each worker fills a private table and the shards
// are merged in shard order, so later shards win overlaps exactly as
// later iterations win in a serial fill. Merge mutates t only; other is
// read but never modified, and a nil or empty other is a no-op.
func (t *Table) Merge(other *Table) {
	if other == nil {
		return
	}
	for tr, v := range other.values {
		t.values[tr] = v
	}
	for k, g := range other.groups {
		t.groups[k] = g
	}
	for q := range other.qs {
		t.qs[q] = struct{}{}
	}
	for l := range other.ls {
		t.ls[l] = struct{}{}
	}
}

// MergeTables combines shard tables in shard order into one table. With
// one shard it returns that shard directly (no copy); with more it
// allocates the result presized to the combined entry counts and merges
// every shard into it, so the combination performs exactly one map fill
// with zero incremental rehashes — the cost that made the sharded
// evaluators' workers>1 merge path pay pure overhead (BENCH_PR7). Nil
// shards are skipped; shard order is preserved, so later shards win
// overlapping triples exactly as Table.Merge documents.
func MergeTables(shards []*Table) *Table {
	first := -1
	var nv, ng, nq, nl int
	for i, s := range shards {
		if s == nil {
			continue
		}
		if first < 0 {
			first = i
		}
		nv += len(s.values)
		ng += len(s.groups)
		nq += len(s.qs)
		nl += len(s.ls)
	}
	if first < 0 {
		return NewTable()
	}
	if nv == len(shards[first].values) {
		// Every other shard is nil or empty: reuse the one filled table.
		return shards[first]
	}
	out := NewTableSized(nv, ng, nq, nl)
	for _, s := range shards {
		out.Merge(s)
	}
	return out
}

// reset empties the table in place, keeping the maps' capacity — the
// recycling step of the shard-table pool.
func (t *Table) reset() {
	clear(t.values)
	clear(t.groups)
	clear(t.qs)
	clear(t.ls)
}

// Clone returns a deep copy of the table: the copy and the original share
// no mutable state, so one side may keep writing while the other is frozen
// behind an immutable snapshot. Group values are immutable and shared.
func (t *Table) Clone() *Table {
	c := &Table{
		values: make(map[Triple]float64, len(t.values)),
		groups: make(map[string]Group, len(t.groups)),
		qs:     make(map[Query]struct{}, len(t.qs)),
		ls:     make(map[Location]struct{}, len(t.ls)),
	}
	for tr, v := range t.values {
		c.values[tr] = v
	}
	for k, g := range t.groups {
		c.groups[k] = g
	}
	for q := range t.qs {
		c.qs[q] = struct{}{}
	}
	for l := range t.ls {
		c.ls[l] = struct{}{}
	}
	return c
}

// Get returns d<g,q,l> and whether it was recorded.
func (t *Table) Get(g Group, q Query, l Location) (float64, bool) {
	v, ok := t.values[Triple{g.Key(), q, l}]
	return v, ok
}

// GetKey is Get for callers that hold a group key rather than a Group.
func (t *Table) GetKey(groupKey string, q Query, l Location) (float64, bool) {
	v, ok := t.values[Triple{groupKey, q, l}]
	return v, ok
}

// Len returns the number of recorded triples.
func (t *Table) Len() int { return len(t.values) }

// Groups returns the distinct groups appearing in the table, sorted by
// key.
func (t *Table) Groups() []Group {
	keys := make([]string, 0, len(t.groups))
	for k := range t.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Group, len(keys))
	for i, k := range keys {
		out[i] = t.groups[k]
	}
	return out
}

// GroupByKey resolves a group key recorded in the table.
func (t *Table) GroupByKey(key string) (Group, bool) {
	g, ok := t.groups[key]
	return g, ok
}

// Queries returns the distinct queries in the table, sorted.
func (t *Table) Queries() []Query {
	out := make([]Query, 0, len(t.qs))
	for q := range t.qs {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Locations returns the distinct locations in the table, sorted.
func (t *Table) Locations() []Location {
	out := make([]Location, 0, len(t.ls))
	for l := range t.ls {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Range calls fn for every recorded triple in an unspecified order.
func (t *Table) Range(fn func(tr Triple, v float64)) {
	for tr, v := range t.values {
		fn(tr, v)
	}
}

// AggregateGroup returns d<g,Q,L> (§3.4): the average of d<g,q,l> over the
// given queries and locations, counting only recorded triples. The boolean
// is false when no triple was recorded for g over Q×L.
func (t *Table) AggregateGroup(g Group, qs []Query, ls []Location) (float64, bool) {
	return t.aggregateKey(g.Key(), qs, ls)
}

func (t *Table) aggregateKey(key string, qs []Query, ls []Location) (float64, bool) {
	var sum float64
	var n int
	for _, q := range qs {
		for _, l := range ls {
			if v, ok := t.values[Triple{key, q, l}]; ok {
				sum += v
				n++
			}
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// AggregateQuery returns d<G,q,L>: the average unfairness of query q over
// the given groups and locations.
func (t *Table) AggregateQuery(q Query, gs []Group, ls []Location) (float64, bool) {
	var sum float64
	var n int
	for _, g := range gs {
		for _, l := range ls {
			if v, ok := t.values[Triple{g.Key(), q, l}]; ok {
				sum += v
				n++
			}
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// AggregateLocation returns d<G,Q,l>: the average unfairness of location l
// over the given groups and queries.
func (t *Table) AggregateLocation(l Location, gs []Group, qs []Query) (float64, bool) {
	var sum float64
	var n int
	for _, g := range gs {
		for _, q := range qs {
			if v, ok := t.values[Triple{g.Key(), q, l}]; ok {
				sum += v
				n++
			}
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// String summarizes the table's dimensions.
func (t *Table) String() string {
	return fmt.Sprintf("Table{%d groups × %d queries × %d locations, %d triples}",
		len(t.groups), len(t.qs), len(t.ls), len(t.values))
}
