package core

import (
	"sort"
	"testing"
)

func names(gs []Group) []string {
	out := make([]string, len(gs))
	for i, g := range gs {
		out[i] = g.Name()
	}
	sort.Strings(out)
	return out
}

func TestDefaultSchemaUniverseHas11Groups(t *testing.T) {
	// The paper's Table 8 lists exactly 11 groups for gender×ethnicity:
	// 6 full combinations, 3 ethnicity-only, 2 gender-only.
	u := DefaultSchema().Universe()
	if len(u) != 11 {
		t.Fatalf("universe size = %d, want 11: %v", len(u), names(u))
	}
	want := map[string]bool{
		"Asian Female": true, "Asian Male": true, "Black Female": true,
		"Black Male": true, "White Female": true, "White Male": true,
		"Asian": true, "Black": true, "White": true, "Male": true, "Female": true,
	}
	for _, g := range u {
		if !want[g.Name()] {
			t.Errorf("unexpected group %q", g.Name())
		}
		delete(want, g.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing groups: %v", want)
	}
}

func TestFullGroups(t *testing.T) {
	fg := DefaultSchema().FullGroups()
	if len(fg) != 6 {
		t.Fatalf("full groups = %d, want 6", len(fg))
	}
	for _, g := range fg {
		if len(g.Label) != 2 {
			t.Errorf("full group %q constrains %d attributes", g.Name(), len(g.Label))
		}
	}
}

func TestVariantsMatchPaperExample(t *testing.T) {
	// §3.1: for label (gender=male ∧ ethnicity=black),
	// variants(g, gender) = {(gender=female ∧ ethnicity=black)} and
	// variants(g, ethnicity) = {asian male, white male}.
	s := DefaultSchema()
	g := NewGroup(Predicate{"gender", "Male"}, Predicate{"ethnicity", "Black"})

	genderVars := s.Variants(g, "gender")
	if len(genderVars) != 1 || genderVars[0].Name() != "Black Female" {
		t.Fatalf("variants(g, gender) = %v", names(genderVars))
	}
	ethVars := s.Variants(g, "ethnicity")
	got := names(ethVars)
	if len(got) != 2 || got[0] != "Asian Male" || got[1] != "White Male" {
		t.Fatalf("variants(g, ethnicity) = %v", got)
	}
}

func TestVariantsOfUnconstrainedAttributeEmpty(t *testing.T) {
	s := DefaultSchema()
	g := NewGroup(Predicate{"gender", "Male"})
	if vs := s.Variants(g, "ethnicity"); vs != nil {
		t.Fatalf("variants on unconstrained attr = %v", names(vs))
	}
}

func TestComparableMatchesIntroExample(t *testing.T) {
	// §1: comparable groups of "Black Females" are "Black Males",
	// "White Females" and "Asian Females".
	s := DefaultSchema()
	g, ok := s.GroupByName("Black Female")
	if !ok {
		t.Fatal("Black Female not in universe")
	}
	got := names(s.Comparable(g))
	want := []string{"Asian Female", "Black Male", "White Female"}
	if len(got) != len(want) {
		t.Fatalf("comparable = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("comparable = %v, want %v", got, want)
		}
	}
}

func TestComparableOfSingleAttributeGroup(t *testing.T) {
	s := DefaultSchema()
	g, _ := s.GroupByName("Male")
	got := names(s.Comparable(g))
	if len(got) != 1 || got[0] != "Female" {
		t.Fatalf("comparable(Male) = %v", got)
	}
	asian, _ := s.GroupByName("Asian")
	got = names(s.Comparable(asian))
	if len(got) != 2 || got[0] != "Black" || got[1] != "White" {
		t.Fatalf("comparable(Asian) = %v", got)
	}
}

func TestGroupByName(t *testing.T) {
	s := DefaultSchema()
	if _, ok := s.GroupByName("Purple Person"); ok {
		t.Fatal("nonexistent group found")
	}
	g, ok := s.GroupByName("White Male")
	if !ok || g.Name() != "White Male" {
		t.Fatalf("GroupByName(White Male) = %v, %v", g, ok)
	}
}

func TestSchemaPanics(t *testing.T) {
	cases := map[string]map[Attribute][]string{
		"empty schema":    {},
		"empty domain":    {"gender": {}},
		"duplicate value": {"gender": {"Male", "Male"}},
	}
	for name, domains := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			NewSchema(domains)
		}()
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := DefaultSchema()
	attrs := s.Attributes()
	if len(attrs) != 2 || attrs[0] != "ethnicity" || attrs[1] != "gender" {
		t.Fatalf("Attributes = %v", attrs)
	}
	if !s.Has("gender") || s.Has("age") {
		t.Fatal("Has misbehaves")
	}
	d := s.Domain("ethnicity")
	if len(d) != 3 {
		t.Fatalf("Domain(ethnicity) = %v", d)
	}
	// Mutating the returned slice must not affect the schema.
	d[0] = "Martian"
	if s.Domain("ethnicity")[0] == "Martian" {
		t.Fatal("Domain leaks internal slice")
	}
}

func TestUniverseWithThreeAttributes(t *testing.T) {
	s := NewSchema(map[Attribute][]string{
		"gender":    {"Male", "Female"},
		"ethnicity": {"Asian", "Black", "White"},
		"age":       {"Young", "Old"},
	})
	// Subsets: g(2) + e(3) + a(2) + ge(6) + ga(4) + ea(6) + gea(12) = 35.
	if got := len(s.Universe()); got != 35 {
		t.Fatalf("universe size = %d, want 35", got)
	}
	// A full group's comparables: one per alternative value per attribute.
	g := NewGroup(Predicate{"gender", "Male"}, Predicate{"ethnicity", "Black"}, Predicate{"age", "Young"})
	if got := len(s.Comparable(g)); got != 4 { // 1 gender + 2 ethnicity + 1 age
		t.Fatalf("comparable count = %d, want 4", got)
	}
}
