package core

import (
	"math"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTableSetGet(t *testing.T) {
	tbl := NewTable()
	g := NewGroup(Predicate{"gender", "Male"})
	tbl.Set(g, "cleaning", "NYC", 0.4)
	if v, ok := tbl.Get(g, "cleaning", "NYC"); !ok || v != 0.4 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if _, ok := tbl.Get(g, "cleaning", "LA"); ok {
		t.Fatal("unexpected value for unrecorded triple")
	}
	tbl.Set(g, "cleaning", "NYC", 0.6) // overwrite
	if v, _ := tbl.Get(g, "cleaning", "NYC"); v != 0.6 {
		t.Fatalf("overwrite failed: %v", v)
	}
	if v, ok := tbl.GetKey(g.Key(), "cleaning", "NYC"); !ok || v != 0.6 {
		t.Fatalf("GetKey = %v, %v", v, ok)
	}
}

func TestTableDimensions(t *testing.T) {
	tbl := NewTable()
	male := NewGroup(Predicate{"gender", "Male"})
	female := NewGroup(Predicate{"gender", "Female"})
	tbl.Set(male, "q1", "l1", 0.1)
	tbl.Set(male, "q2", "l2", 0.2)
	tbl.Set(female, "q1", "l2", 0.3)

	if gs := tbl.Groups(); len(gs) != 2 {
		t.Fatalf("Groups = %v", gs)
	}
	if qs := tbl.Queries(); len(qs) != 2 || qs[0] != "q1" || qs[1] != "q2" {
		t.Fatalf("Queries = %v", qs)
	}
	if ls := tbl.Locations(); len(ls) != 2 || ls[0] != "l1" || ls[1] != "l2" {
		t.Fatalf("Locations = %v", ls)
	}
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if g, ok := tbl.GroupByKey(male.Key()); !ok || g.Name() != "Male" {
		t.Fatalf("GroupByKey = %v, %v", g, ok)
	}
}

func TestTableAggregateGroup(t *testing.T) {
	tbl := NewTable()
	g := NewGroup(Predicate{"gender", "Female"})
	tbl.Set(g, "q1", "l1", 0.2)
	tbl.Set(g, "q1", "l2", 0.4)
	tbl.Set(g, "q2", "l1", 0.6)
	// q2/l2 missing: aggregation averages over recorded triples only.
	v, ok := tbl.AggregateGroup(g, []Query{"q1", "q2"}, []Location{"l1", "l2"})
	if !ok || !approx(v, 0.4, 1e-12) {
		t.Fatalf("AggregateGroup = %v, %v", v, ok)
	}
	// Restricting the query set restricts the average.
	v, _ = tbl.AggregateGroup(g, []Query{"q1"}, []Location{"l1", "l2"})
	if !approx(v, 0.3, 1e-12) {
		t.Fatalf("restricted AggregateGroup = %v", v)
	}
	if _, ok := tbl.AggregateGroup(g, []Query{"nope"}, []Location{"l1"}); ok {
		t.Fatal("aggregate over unrecorded cells should be undefined")
	}
}

func TestTableAggregateQueryAndLocation(t *testing.T) {
	tbl := NewTable()
	male := NewGroup(Predicate{"gender", "Male"})
	female := NewGroup(Predicate{"gender", "Female"})
	tbl.Set(male, "q1", "l1", 0.1)
	tbl.Set(female, "q1", "l1", 0.3)
	tbl.Set(male, "q1", "l2", 0.5)

	gs := []Group{male, female}
	v, ok := tbl.AggregateQuery("q1", gs, []Location{"l1"})
	if !ok || !approx(v, 0.2, 1e-12) {
		t.Fatalf("AggregateQuery = %v, %v", v, ok)
	}
	v, ok = tbl.AggregateLocation("l2", gs, []Query{"q1"})
	if !ok || !approx(v, 0.5, 1e-12) {
		t.Fatalf("AggregateLocation = %v, %v", v, ok)
	}
	if _, ok := tbl.AggregateLocation("l3", gs, []Query{"q1"}); ok {
		t.Fatal("missing location should be undefined")
	}
}

func TestTableRange(t *testing.T) {
	tbl := NewTable()
	g := NewGroup(Predicate{"gender", "Male"})
	tbl.Set(g, "q1", "l1", 0.25)
	tbl.Set(g, "q2", "l1", 0.75)
	var sum float64
	var count int
	tbl.Range(func(tr Triple, v float64) {
		sum += v
		count++
	})
	if count != 2 || !approx(sum, 1.0, 1e-12) {
		t.Fatalf("Range visited %d values summing to %v", count, sum)
	}
}

func TestTableString(t *testing.T) {
	tbl := NewTable()
	tbl.Set(NewGroup(Predicate{"gender", "Male"}), "q", "l", 0.5)
	if got := tbl.String(); got == "" {
		t.Fatal("String empty")
	}
}
