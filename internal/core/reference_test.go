package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"fairjob/internal/stats"
)

// This file contains deliberately naive, independently written reference
// implementations of the paper's formulas — greedy-transport EMD, O(n²)
// Kendall, explicit share arithmetic — and differential tests checking the
// production evaluators against them on random inputs.

// refEMDHistograms computes EMD between normalized histograms by greedy
// earth moving (two-pointer transport), independent of the CDF identity
// the production code uses.
func refEMDHistograms(c1, c2 []float64) float64 {
	n := len(c1)
	a := append([]float64(nil), c1...)
	b := append([]float64(nil), c2...)
	norm := func(xs []float64) {
		var t float64
		for _, x := range xs {
			t += x
		}
		if t == 0 {
			for i := range xs {
				xs[i] = 1 / float64(len(xs))
			}
			return
		}
		for i := range xs {
			xs[i] /= t
		}
	}
	norm(a)
	norm(b)
	var cost float64
	i, j := 0, 0
	for i < n && j < n {
		m := a[i]
		if b[j] < m {
			m = b[j]
		}
		d := i - j
		if d < 0 {
			d = -d
		}
		cost += m * float64(d)
		a[i] -= m
		b[j] -= m
		if a[i] <= 1e-15 {
			i++
		}
		if b[j] <= 1e-15 {
			j++
		}
	}
	return cost / float64(n-1)
}

// refKendall is the O(n²) pairwise definition over common items.
func refKendall(a, b []string) (float64, bool) {
	posB := map[string]int{}
	for i, x := range b {
		if _, ok := posB[x]; !ok {
			posB[x] = i
		}
	}
	seen := map[string]bool{}
	var common []string
	for _, x := range a {
		if seen[x] {
			continue
		}
		seen[x] = true
		if _, ok := posB[x]; ok {
			common = append(common, x)
		}
	}
	if len(common) < 2 {
		return 0, false
	}
	posA := map[string]int{}
	for i, x := range a {
		if _, ok := posA[x]; !ok {
			posA[x] = i
		}
	}
	disc, pairs := 0, 0
	for i := 0; i < len(common); i++ {
		for j := i + 1; j < len(common); j++ {
			pairs++
			x, y := common[i], common[j]
			if (posA[x] < posA[y]) != (posB[x] < posB[y]) {
				disc++
			}
		}
	}
	return float64(disc) / float64(pairs), true
}

// refMarketplaceEMD transliterates §3.3.1: per-group relevance histograms
// (10 bins over [0,1], rel = 1 − rank/N), averaged greedy-EMD against each
// non-empty comparable group.
func refMarketplaceEMD(schema *Schema, r *MarketplaceRanking, g Group) (float64, bool) {
	if len(r.Workers) == 0 {
		return 0, false
	}
	hist := func(grp Group) ([]float64, int) {
		counts := make([]float64, DefaultEMDBins)
		members := 0
		for _, w := range r.Workers {
			if !w.Attrs.Matches(grp.Label) {
				continue
			}
			members++
			rel := 1 - float64(w.Rank)/float64(len(r.Workers))
			bin := int(float64(DefaultEMDBins)*rel + 1e-9)
			if bin >= DefaultEMDBins {
				bin = DefaultEMDBins - 1
			}
			if bin < 0 {
				bin = 0
			}
			counts[bin]++
		}
		return counts, members
	}
	hg, ng := hist(g)
	if ng == 0 {
		return 0, false
	}
	var sum float64
	var n int
	for _, cg := range schema.Comparable(g) {
		hc, nc := hist(cg)
		if nc == 0 {
			continue
		}
		sum += refEMDHistograms(hg, hc)
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// refMarketplaceExposure transliterates §3.3.2 with explicit loops.
func refMarketplaceExposure(schema *Schema, r *MarketplaceRanking, g Group) (float64, bool) {
	if len(r.Workers) == 0 {
		return 0, false
	}
	expOf := func(grp Group) (expSum, relSum float64, members int) {
		for _, w := range r.Workers {
			if !w.Attrs.Matches(grp.Label) {
				continue
			}
			members++
			expSum += 1 / math.Log(1+float64(w.Rank))
			relSum += 1 - float64(w.Rank)/float64(len(r.Workers))
		}
		return
	}
	ge, gr, ng := expOf(g)
	if ng == 0 {
		return 0, false
	}
	te, tr := ge, gr
	anyComp := false
	for _, cg := range schema.Comparable(g) {
		ce, cr, nc := expOf(cg)
		if nc > 0 {
			anyComp = true
		}
		te += ce
		tr += cr
	}
	if !anyComp {
		return 0, true
	}
	share := func(part, tot float64) float64 {
		if tot == 0 {
			return 0
		}
		return part / tot
	}
	return math.Abs(share(ge, te) - share(gr, tr)), true
}

// refSearchKendall transliterates Equation 1 with explicit loops.
func refSearchKendall(schema *Schema, sr *SearchResults, g Group) (float64, bool) {
	members := func(grp Group) []UserResults {
		var out []UserResults
		for _, u := range sr.Users {
			if u.Attrs.Matches(grp.Label) {
				out = append(out, u)
			}
		}
		return out
	}
	gUsers := members(g)
	if len(gUsers) == 0 {
		return 0, false
	}
	jacc := func(a, b []string) float64 {
		sa, sb := map[string]bool{}, map[string]bool{}
		for _, x := range a {
			sa[x] = true
		}
		for _, x := range b {
			sb[x] = true
		}
		if len(sa) == 0 && len(sb) == 0 {
			return 0
		}
		inter := 0
		for x := range sa {
			if sb[x] {
				inter++
			}
		}
		return 1 - float64(inter)/float64(len(sa)+len(sb)-inter)
	}
	var sum float64
	var n int
	for _, cg := range schema.Comparable(g) {
		cUsers := members(cg)
		if len(cUsers) == 0 {
			continue
		}
		var pairSum float64
		for _, u := range gUsers {
			for _, v := range cUsers {
				if d, ok := refKendall(u.List, v.List); ok {
					pairSum += d
				} else {
					pairSum += jacc(u.List, v.List)
				}
			}
		}
		sum += pairSum / float64(len(gUsers)*len(cUsers))
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

func TestMarketplaceEvaluatorMatchesReference(t *testing.T) {
	schema := DefaultSchema()
	f := func(seed uint64, sz uint8) bool {
		r := randomRanking(seed, int(sz%40)+1)
		emd := &MarketplaceEvaluator{Schema: schema, Measure: MeasureEMD}
		expo := &MarketplaceEvaluator{Schema: schema, Measure: MeasureExposure}
		for _, g := range schema.Universe() {
			d1, ok1 := emd.Unfairness(r, g)
			d2, ok2 := refMarketplaceEMD(schema, r, g)
			if ok1 != ok2 || (ok1 && math.Abs(d1-d2) > 1e-9) {
				return false
			}
			e1, okE1 := expo.Unfairness(r, g)
			e2, okE2 := refMarketplaceExposure(schema, r, g)
			if okE1 != okE2 || (okE1 && math.Abs(e1-e2) > 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchEvaluatorMatchesReference(t *testing.T) {
	schema := DefaultSchema()
	f := func(seed uint64, nUsers, listLen uint8) bool {
		rng := stats.NewRNG(seed)
		sr := &SearchResults{Query: "q", Location: "l"}
		genders := []string{"Male", "Female"}
		eths := []string{"Asian", "Black", "White"}
		n := int(nUsers%8) + 2
		ll := int(listLen%10) + 1
		for u := 0; u < n; u++ {
			list := make([]string, ll)
			for i := range list {
				list[i] = fmt.Sprintf("item%d", rng.Intn(15))
			}
			sr.Users = append(sr.Users, UserResults{
				ID:    fmt.Sprintf("u%d", u),
				Attrs: Assignment{"gender": genders[rng.Intn(2)], "ethnicity": eths[rng.Intn(3)]},
				List:  list,
			})
		}
		ev := &SearchEvaluator{Schema: schema, Measure: MeasureKendallTau}
		for _, g := range schema.Universe() {
			d1, ok1 := ev.Unfairness(sr, g)
			d2, ok2 := refSearchKendall(schema, sr, g)
			if ok1 != ok2 || (ok1 && math.Abs(d1-d2) > 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
