package core

import (
	"sync/atomic"
	"time"

	"fairjob/internal/obs"
)

// evalMetrics holds an evaluator's telemetry handles, resolved against
// the registry once per EvaluateAll so the sharded workers touch only
// atomics. A nil *evalMetrics (evaluator without a registry) disables
// instrumentation at the cost of one branch per shard — the per-cell hot
// path is never touched.
type evalMetrics struct {
	shardSeconds *obs.Histogram // per-shard wall time
	pages        *obs.Counter   // rankings / result sets evaluated
	cells        *obs.Counter   // defined d<g,q,l> cells produced
	runs         *obs.Counter   // EvaluateAll invocations
	workers      *obs.Gauge     // pool size of the latest run
	utilization  *obs.Gauge     // busy-time share of the latest run
	distHits     *obs.Counter   // search only: distance-cache hits
	distMisses   *obs.Counter   // search only: distance-cache misses
}

// newEvalMetrics resolves the evaluator metric family for one pipeline
// ("market" or "search") against reg; nil reg returns nil.
func newEvalMetrics(reg *obs.Registry, eval string) *evalMetrics {
	if reg == nil {
		return nil
	}
	m := &evalMetrics{
		shardSeconds: reg.Histogram(obs.Name("eval_shard_seconds", "eval", eval), nil),
		pages:        reg.Counter(obs.Name("eval_pages_total", "eval", eval)),
		cells:        reg.Counter(obs.Name("eval_cells_total", "eval", eval)),
		runs:         reg.Counter(obs.Name("eval_runs_total", "eval", eval)),
		workers:      reg.Gauge(obs.Name("eval_workers", "eval", eval)),
		utilization:  reg.Gauge(obs.Name("eval_worker_utilization", "eval", eval)),
	}
	if eval == "search" {
		m.distHits = reg.Counter("eval_distcache_hits_total")
		m.distMisses = reg.Counter("eval_distcache_misses_total")
	}
	return m
}

// evalRun aggregates one EvaluateAll execution: the wall-clock anchor
// and the summed busy time of all shards, from which worker utilization
// (busy / (wall × workers)) is derived.
type evalRun struct {
	m     *evalMetrics
	start time.Time
	busy  atomic.Int64 // summed shard nanoseconds
}

func (m *evalMetrics) begin() *evalRun {
	if m == nil {
		return nil
	}
	return &evalRun{m: m, start: time.Now()}
}

// shardDone records one finished shard: its duration, its page span and
// the defined cells it produced.
func (r *evalRun) shardDone(start time.Time, pages, cells int) {
	if r == nil {
		return
	}
	d := time.Since(start)
	r.busy.Add(d.Nanoseconds())
	r.m.shardSeconds.Observe(d.Seconds())
	r.m.pages.Add(uint64(pages))
	r.m.cells.Add(uint64(cells))
}

// finish records the run-level gauges once every shard has completed.
func (r *evalRun) finish(workers int) {
	if r == nil {
		return
	}
	r.m.runs.Inc()
	r.m.workers.Set(float64(workers))
	wall := time.Since(r.start).Seconds()
	if wall > 0 && workers > 0 {
		r.m.utilization.Set(float64(r.busy.Load()) / 1e9 / (wall * float64(workers)))
	}
}

// distCacheDone adds one shard's distance-cache tallies (search
// pipeline).
func (r *evalRun) distCacheDone(hits, misses int) {
	if r == nil || r.m.distHits == nil {
		return
	}
	r.m.distHits.Add(uint64(hits))
	r.m.distMisses.Add(uint64(misses))
}
