// Package marketplace implements the TaskRabbit-like substrate of the case
// study (§5.1.1): 56 cities, a job taxonomy of 8 categories fanned into
// ~96 concrete job queries, a pool of 3,311 taskers with the crawled
// dataset's demographic mix, and a parameterized biased scoring model that
// ranks taskers per (job, city) query.
//
// The paper crawled this data from the live site; we synthesize it. The
// bias model's group/job/location intensities are calibrated so that the
// *shape* of the paper's findings reproduces — who is most discriminated
// against, which jobs and locations are least fair — while every code path
// of the fairness framework is exercised exactly as it would be on a real
// crawl. See DESIGN.md §2 for the substitution rationale.
package marketplace

import (
	"fairjob/internal/core"
)

// City describes one market the platform operates in.
type City struct {
	Name    core.Location
	Country string
	// Weight is the relative tasker-population size used when
	// distributing the pool across cities.
	Weight float64
	// Bias is the location's discrimination intensity in [0, 1]; it
	// scales the group penalty applied by the scoring model. The values
	// are calibrated to the ordering of the paper's Tables 10–11.
	Bias float64
	// FemaleFavored marks markets where the gender component of the
	// bias is inverted (females ranked above comparable males) — the
	// phenomenon behind the paper's Table 12 reversal locations.
	FemaleFavored bool
}

// Cities returns the 56 markets of the simulation. The first 28 are the
// cities the paper names; the rest fill out TaskRabbit's 56-city coverage.
func Cities() []City {
	return []City{
		// The ten least fair locations of Table 10, in order.
		{Name: "Birmingham, UK", Country: "UK", Weight: 1.0, Bias: 1.00},
		{Name: "Oklahoma City, OK", Country: "US", Weight: 1.0, Bias: 0.97},
		{Name: "Bristol, UK", Country: "UK", Weight: 1.0, Bias: 0.92},
		{Name: "Manchester, UK", Country: "UK", Weight: 1.0, Bias: 0.88},
		{Name: "New Haven, CT", Country: "US", Weight: 1.0, Bias: 0.84},
		{Name: "Milwaukee, WI", Country: "US", Weight: 1.0, Bias: 0.82},
		{Name: "Memphis, TN", Country: "US", Weight: 1.0, Bias: 0.81},
		{Name: "Indianapolis, IN", Country: "US", Weight: 1.0, Bias: 0.80},
		{Name: "Nashville, TN", Country: "US", Weight: 1.0, Bias: 0.78, FemaleFavored: true},
		{Name: "Detroit, MI", Country: "US", Weight: 1.0, Bias: 0.77},
		// The ten fairest locations of Table 11, in order.
		{Name: "Chicago, IL", Country: "US", Weight: 1.0, Bias: 0.22, FemaleFavored: true},
		{Name: "San Francisco, CA", Country: "US", Weight: 1.0, Bias: 0.08},
		{Name: "Washington, DC", Country: "US", Weight: 1.0, Bias: 0.12},
		{Name: "Los Angeles, CA", Country: "US", Weight: 1.0, Bias: 0.17},
		{Name: "Boston, MA", Country: "US", Weight: 1.0, Bias: 0.16},
		{Name: "Atlanta, GA", Country: "US", Weight: 1.0, Bias: 0.20},
		{Name: "Houston, TX", Country: "US", Weight: 1.0, Bias: 0.22},
		{Name: "Orlando, FL", Country: "US", Weight: 1.0, Bias: 0.24},
		{Name: "Philadelphia, PA", Country: "US", Weight: 1.0, Bias: 0.26},
		{Name: "San Diego, CA", Country: "US", Weight: 1.0, Bias: 0.27},
		// Other cities the paper mentions.
		{Name: "New York City, NY", Country: "US", Weight: 1.0, Bias: 0.45},
		{Name: "London, UK", Country: "UK", Weight: 1.0, Bias: 0.62},
		{Name: "Charlotte, NC", Country: "US", Weight: 1.0, Bias: 0.58, FemaleFavored: true},
		{Name: "Norfolk, VA", Country: "US", Weight: 1.0, Bias: 0.52, FemaleFavored: true},
		{Name: "St. Louis, MO", Country: "US", Weight: 1.0, Bias: 0.55, FemaleFavored: true},
		{Name: "Salt Lake City, UT", Country: "US", Weight: 1.0, Bias: 0.66},
		{Name: "San Francisco Bay Area, CA", Country: "US", Weight: 1.0, Bias: 0.02, FemaleFavored: true},
		{Name: "Pittsburgh, PA", Country: "US", Weight: 1.0, Bias: 0.50},
		// Fill to TaskRabbit's 56-city footprint.
		{Name: "Seattle, WA", Country: "US", Weight: 1.0, Bias: 0.33},
		{Name: "Portland, OR", Country: "US", Weight: 1.0, Bias: 0.35},
		{Name: "Denver, CO", Country: "US", Weight: 1.0, Bias: 0.38},
		{Name: "Austin, TX", Country: "US", Weight: 1.0, Bias: 0.39},
		{Name: "Dallas, TX", Country: "US", Weight: 1.0, Bias: 0.47},
		{Name: "Phoenix, AZ", Country: "US", Weight: 1.0, Bias: 0.53},
		{Name: "Miami, FL", Country: "US", Weight: 1.0, Bias: 0.44},
		{Name: "Tampa, FL", Country: "US", Weight: 1.0, Bias: 0.56},
		{Name: "Minneapolis, MN", Country: "US", Weight: 1.0, Bias: 0.42},
		{Name: "Kansas City, MO", Country: "US", Weight: 1.0, Bias: 0.60},
		{Name: "Columbus, OH", Country: "US", Weight: 1.0, Bias: 0.59},
		{Name: "Cleveland, OH", Country: "US", Weight: 1.0, Bias: 0.63},
		{Name: "Cincinnati, OH", Country: "US", Weight: 1.0, Bias: 0.61},
		{Name: "Baltimore, MD", Country: "US", Weight: 1.0, Bias: 0.57},
		{Name: "Richmond, VA", Country: "US", Weight: 1.0, Bias: 0.64},
		{Name: "Raleigh, NC", Country: "US", Weight: 1.0, Bias: 0.54},
		{Name: "Sacramento, CA", Country: "US", Weight: 1.0, Bias: 0.48},
		{Name: "San Jose, CA", Country: "US", Weight: 1.0, Bias: 0.37},
		{Name: "Las Vegas, NV", Country: "US", Weight: 1.0, Bias: 0.65},
		{Name: "Albuquerque, NM", Country: "US", Weight: 1.0, Bias: 0.67},
		{Name: "Tucson, AZ", Country: "US", Weight: 1.0, Bias: 0.68},
		{Name: "Omaha, NE", Country: "US", Weight: 1.0, Bias: 0.70},
		{Name: "Louisville, KY", Country: "US", Weight: 1.0, Bias: 0.69},
		{Name: "Jacksonville, FL", Country: "US", Weight: 1.0, Bias: 0.71},
		{Name: "New Orleans, LA", Country: "US", Weight: 1.0, Bias: 0.72},
		{Name: "Buffalo, NY", Country: "US", Weight: 1.0, Bias: 0.73},
		{Name: "Rochester, NY", Country: "US", Weight: 1.0, Bias: 0.74},
		{Name: "Hartford, CT", Country: "US", Weight: 1.0, Bias: 0.75},
	}
}

// CityByName returns the city with the given location name.
func CityByName(name core.Location) (City, bool) {
	for _, c := range Cities() {
		if c.Name == name {
			return c, true
		}
	}
	return City{}, false
}
