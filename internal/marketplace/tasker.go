package marketplace

import (
	"fmt"
	"sort"

	"fairjob/internal/core"
	"fairjob/internal/stats"
)

// Tasker is one worker on the marketplace. Gender and Ethnicity are the
// ground-truth demographics of the simulated person; the labeling package
// derives the (possibly noisy) observed labels the F-Box actually sees,
// mirroring the paper's AMT photo-labeling step.
type Tasker struct {
	ID        string
	City      core.Location
	Gender    string
	Ethnicity string
	// Quality is the tasker's intrinsic job quality in [0, 1] —
	// unobservable in reality, used by the scoring model and by
	// validation tests that check measured unfairness against known
	// ground truth.
	Quality float64
	// Rating is the consumer rating in [1, 5]. It is partially
	// contaminated by group bias (BiasModel.RatingBias), modelling the
	// consumer-sourced feedback loop of Hannak et al. and Rosenblat et
	// al. that the paper's introduction cites.
	Rating float64
	// Completed is the number of completed tasks.
	Completed int
	// HourlyRate in USD.
	HourlyRate float64
	// Elite marks the platform's quality badge.
	Elite bool
	// Categories are the job-category names the tasker serves.
	Categories []string
	// PhotoID identifies the profile picture shown to AMT labelers.
	PhotoID string
	// CatMemberIdx is the tasker's deterministic index among the members
	// of their (city, full group) serving each category, assigned by
	// stratifyCategories and used by the per-job serving rule.
	CatMemberIdx map[string]int
	// BiasU is the tasker's persistent uniform draw deciding which
	// branch of their group's penalty mixture they fall into (see
	// BiasModel.Hit). Persisting it keeps a tasker's treatment
	// consistent across queries while letting FemaleFavored cities
	// re-evaluate the mixture under the flipped gender.
	BiasU float64
}

// ServesCategory reports whether the tasker offers jobs in the named
// category.
func (t *Tasker) ServesCategory(name string) bool {
	for _, c := range t.Categories {
		if c == name {
			return true
		}
	}
	return false
}

// Attrs returns the tasker's ground-truth protected attributes as a core
// assignment.
func (t *Tasker) Attrs() core.Assignment {
	return core.Assignment{"gender": t.Gender, "ethnicity": t.Ethnicity}
}

// PopulationShares is the demographic mix of the generated pool, matching
// the crawled dataset's Figures 7–8 (≈72% male, ≈66% white).
type PopulationShares struct {
	MaleShare      float64
	EthnicityShare map[string]float64
}

// DefaultShares returns the paper's crawl demographics.
func DefaultShares() PopulationShares {
	return PopulationShares{
		MaleShare:      0.72,
		EthnicityShare: map[string]float64{White: 0.66, Black: 0.20, Asian: 0.14},
	}
}

// categoryAffinity returns the relative propensity of a gender for a
// category, encoding the occupational segregation visible in the crawled
// data (men over-represented in moving/handyman work, women in cleaning
// and event staffing). These asymmetries are what create result pages
// missing one gender entirely, which in turn drive the defined-only
// aggregate differences of Table 12.
func categoryAffinity(gender, category string) float64 {
	// Explicit serving-share tables per gender (each sums to 3.0, the
	// number of categories every tasker serves). The skew encodes the
	// occupational segregation of the crawled data (men in handyman and
	// yard work, women in cleaning and event staffing); the two tables
	// are balanced so every category draws a near-equal total candidate
	// pool, keeping page-cap truncation uniform across categories —
	// otherwise large categories would have their displaced workers
	// censored off-page and measure spuriously fair.
	male := map[string]float64{
		"Handyman": 0.42, "Yard Work": 0.415, "Moving": 0.405,
		"Delivery": 0.385, "Run Errands": 0.38, "Furniture Assembly": 0.375,
		"Event Staffing": 0.325, "General Cleaning": 0.32,
	}
	female := map[string]float64{
		"General Cleaning": 0.46, "Event Staffing": 0.44,
		"Furniture Assembly": 0.40, "Run Errands": 0.38,
		"Delivery": 0.37, "Moving": 0.34, "Yard Work": 0.31,
		"Handyman": 0.30,
	}
	if gender == Male {
		return male[category]
	}
	return female[category]
}

// generatePool creates n taskers distributed over the cities by weight,
// deterministic in rng. Within each city the demographic composition is
// an exact quota realization of the population shares (largest-remainder
// over the six full groups) rather than an i.i.d. draw: the paper compares
// cities against each other, and per-city sampling luck in minority counts
// would otherwise swamp the location-bias signal the comparison is after.
func generatePool(rng *stats.RNG, n int, shares PopulationShares) []*Tasker {
	cities := Cities()
	weights := make([]float64, len(cities))
	var totalW float64
	for i, c := range cities {
		weights[i] = c.Weight
		totalW += c.Weight
	}
	counts := apportion(n, weights, totalW)

	catNames := make([]string, 0, 8)
	for _, c := range Categories() {
		catNames = append(catNames, c.Name)
	}

	var pool []*Tasker
	id := 0
	for ci, city := range cities {
		cityTaskers := make([]*Tasker, 0, counts[ci])
		for _, q := range groupQuotas(counts[ci], shares) {
			for k := 0; k < q.count; k++ {
				cityTaskers = append(cityTaskers, newTasker(rng, id, city, q.gender, q.eth, catNames))
				id++
			}
		}
		stratifyBiasU(cityTaskers)
		stratifyCategories(cityTaskers, catNames)
		stratifyQuality(cityTaskers)
		pool = append(pool, cityTaskers...)
	}
	return pool
}

// apportion distributes n across weights with the largest-remainder
// method, deterministically.
func apportion(n int, weights []float64, totalW float64) []int {
	counts := make([]int, len(weights))
	assigned := 0
	type rem struct {
		i    int
		frac float64
	}
	rems := make([]rem, len(weights))
	for i := range weights {
		exact := float64(n) * weights[i] / totalW
		counts[i] = int(exact)
		assigned += counts[i]
		rems[i] = rem{i, exact - float64(counts[i])}
	}
	for assigned < n {
		best := -1
		for j, r := range rems {
			if r.i < 0 {
				continue
			}
			if best < 0 || r.frac > rems[best].frac {
				best = j
			}
		}
		counts[rems[best].i]++
		rems[best].i = -1
		assigned++
	}
	return counts
}

type groupQuota struct {
	gender, eth string
	count       int
}

// groupQuotas converts population shares into exact per-group counts for a
// city of the given size.
func groupQuotas(cityN int, shares PopulationShares) []groupQuota {
	var quotas []groupQuota
	var weights []float64
	for _, gender := range Genders() {
		gShare := shares.MaleShare
		if gender == Female {
			gShare = 1 - shares.MaleShare
		}
		for _, eth := range Ethnicities() {
			quotas = append(quotas, groupQuota{gender: gender, eth: eth})
			weights = append(weights, gShare*shares.EthnicityShare[eth])
		}
	}
	counts := apportion(cityN, weights, stats.Sum(weights))
	for i := range quotas {
		quotas[i].count = counts[i]
	}
	return quotas
}

// stratifyBiasU replaces the i.i.d. uniform mixture draws with stratified
// ones: within each (city, full group) the draws are evenly spaced over
// [0, 1]. The group's penalty mixture is then realized near-exactly in
// every city instead of by small-sample luck, which keeps a city's
// measured unfairness driven by its bias intensity rather than by which
// handful of minority taskers it happened to get. Members are sorted by
// ID first so the assignment is deterministic.
func stratifyBiasU(cityTaskers []*Tasker) {
	byGroup := make(map[string][]*Tasker)
	for _, t := range cityTaskers {
		key := t.Gender + "/" + t.Ethnicity
		byGroup[key] = append(byGroup[key], t)
	}
	for _, members := range byGroup {
		sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
		n := float64(len(members))
		for i, t := range members {
			t.BiasU = (float64(i) + 0.5) / n
		}
	}
}

// stratifyQuality deterministically re-draws quality and completed-task
// counts within each (city, full group) as exact quantile realizations of
// their distributions (with decorrelated orderings), for the same reason
// as stratifyBiasU: with identical group compositions everywhere, a
// city's measured unfairness reflects its bias intensity, not which
// taskers it happened to draw.
func stratifyQuality(cityTaskers []*Tasker) {
	byGroup := make(map[string][]*Tasker)
	for _, t := range cityTaskers {
		key := t.Gender + "/" + t.Ethnicity
		byGroup[key] = append(byGroup[key], t)
	}
	for _, members := range byGroup {
		sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
		n := len(members)
		for i, t := range members {
			z := stats.InvNorm((float64(i) + 0.5) / float64(n))
			t.Quality = stats.Clamp(0.62+0.07*z, 0.05, 0.98)
			// A coprime stride decorrelates completed-task counts from
			// quality while keeping the marginal distribution exact.
			j := (i*5 + 2) % n
			zc := stats.InvNorm((float64(j) + 0.5) / float64(n))
			t.Completed = int(stats.Clamp(120+90*zc, 0, 600))
		}
	}
}

// taskerCategories is the number of job categories every tasker serves.
const taskerCategories = 3

// stratifyCategories deterministically reassigns the categories served
// within each (city, full group): members take turns picking the category
// with the lowest assigned-count-to-affinity ratio. Every city then
// realizes the same gender-affinity pattern, so cross-city differences in
// measured unfairness reflect the cities' bias intensities rather than
// category-serving luck — the same rationale as stratifyBiasU.
func stratifyCategories(cityTaskers []*Tasker, catNames []string) {
	byGroup := make(map[string][]*Tasker)
	for _, t := range cityTaskers {
		key := t.Gender + "/" + t.Ethnicity
		byGroup[key] = append(byGroup[key], t)
	}
	for _, members := range byGroup {
		sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
		assigned := make(map[string]float64, len(catNames))
		serveIdx := make(map[string]int, len(catNames))
		for _, t := range members {
			t.Categories = t.Categories[:0]
			t.CatMemberIdx = make(map[string]int, taskerCategories)
			taken := make(map[string]bool, taskerCategories)
			for k := 0; k < taskerCategories; k++ {
				bestCat := ""
				bestRatio := 0.0
				for _, c := range catNames {
					if taken[c] {
						continue
					}
					w := categoryAffinity(t.Gender, c)
					ratio := (assigned[c] + 1) / w
					if bestCat == "" || ratio < bestRatio {
						bestCat, bestRatio = c, ratio
					}
				}
				taken[bestCat] = true
				t.Categories = append(t.Categories, bestCat)
				t.CatMemberIdx[bestCat] = serveIdx[bestCat]
				serveIdx[bestCat]++
				assigned[bestCat]++
			}
		}
	}
}

func newTasker(rng *stats.RNG, id int, city City, gender, eth string, catNames []string) *Tasker {
	t := &Tasker{
		ID:        fmt.Sprintf("tr-%05d", id),
		City:      city.Name,
		Gender:    gender,
		Ethnicity: eth,
		Quality:   stats.Clamp(rng.Normal(0.62, 0.07), 0.05, 0.98),
		PhotoID:   fmt.Sprintf("photo-%05d", id),
		BiasU:     rng.Float64(),
	}
	// Tenure drives completed tasks; a Zipf-ish long tail of veterans.
	t.Completed = int(stats.Clamp(rng.Normal(120, 90), 0, 600))
	t.HourlyRate = stats.Clamp(rng.Normal(38, 12), 12, 120)
	t.Elite = t.Quality > 0.75 && rng.Bernoulli(0.5)

	// Serve 2–4 categories, chosen by gender affinity without repeats.
	nCats := 2 + rng.Intn(3)
	weights := make([]float64, len(catNames))
	for i, c := range catNames {
		weights[i] = categoryAffinity(gender, c)
	}
	for len(t.Categories) < nCats {
		i := rng.Pick(weights)
		if weights[i] == 0 {
			continue
		}
		t.Categories = append(t.Categories, catNames[i])
		weights[i] = 0
	}
	return t
}
