package marketplace

import (
	"sort"
	"testing"

	"fairjob/internal/compare"
	"fairjob/internal/core"
	"fairjob/internal/topk"
)

// crawlCache holds the unfairness tables of one full 5,361-query crawl per
// measure; the shape tests below all read from it. These tests certify
// the calibration targets of DESIGN.md §6 — the qualitative findings of
// the paper's Tables 8–12 — against the synthetic marketplace.
var crawlCache = map[core.MarketplaceMeasure]*core.Table{}

func crawlTable(t *testing.T, measure core.MarketplaceMeasure) *core.Table {
	t.Helper()
	if tbl, ok := crawlCache[measure]; ok {
		return tbl
	}
	m := New(Config{Seed: 7})
	ev := &core.MarketplaceEvaluator{Schema: core.DefaultSchema(), Measure: measure}
	tbl := ev.EvaluateAll(m.CrawlAll(), nil)
	crawlCache[measure] = tbl
	return tbl
}

// groupRanking ranks groups by defined-only average unfairness — the
// aggregation the paper's empirical tables use (see DESIGN.md §5 and the
// experiment package).
func groupRanking(t *testing.T, tbl *core.Table) []topk.Result {
	t.Helper()
	qs, ls := tbl.Queries(), tbl.Locations()
	var res []topk.Result
	for _, g := range tbl.Groups() {
		if v, ok := tbl.AggregateGroup(g, qs, ls); ok {
			res = append(res, topk.Result{Key: g.Key(), Value: v})
		}
	}
	sort.Slice(res, func(i, j int) bool { return res[i].Value > res[j].Value })
	return res
}

func nameOf(t *testing.T, tbl *core.Table, key string) string {
	t.Helper()
	g, ok := tbl.GroupByKey(key)
	if !ok {
		t.Fatalf("unknown group key %q", key)
	}
	return g.Name()
}

// categoryAverages aggregates query-level unfairness to the 8 categories
// with defined-only semantics.
func categoryAverages(tbl *core.Table) map[string]float64 {
	gs, ls := tbl.Groups(), tbl.Locations()
	out := make(map[string]float64)
	for _, cat := range Categories() {
		var sum float64
		var n int
		for _, q := range QueriesOf(cat) {
			for _, g := range gs {
				for _, l := range ls {
					if v, ok := tbl.Get(g, q, l); ok {
						sum += v
						n++
					}
				}
			}
		}
		out[cat.Name] = sum / float64(n)
	}
	return out
}

func locationRanking(t *testing.T, tbl *core.Table) []topk.Result {
	t.Helper()
	gs, qs := tbl.Groups(), tbl.Queries()
	var res []topk.Result
	for _, l := range tbl.Locations() {
		if v, ok := tbl.AggregateLocation(l, gs, qs); ok {
			res = append(res, topk.Result{Key: string(l), Value: v})
		}
	}
	sort.Slice(res, func(i, j int) bool { return res[i].Value > res[j].Value })
	return res
}

func rankOf(results []topk.Result, key string) int {
	for i, r := range results {
		if r.Key == key {
			return i
		}
	}
	return -1
}

func indexOfString(s []string, v string) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

// TestTable8GroupShape asserts the paper's Table 8 shape: the Asian groups
// are the most discriminated against — Asian Female first under both
// measures — females fare worse than males within each ethnicity under
// EMD, and White Male is the fairest full group. (Known divergence,
// recorded in EXPERIMENTS.md: under exposure our dense pages rank
// beneficiary groups — White, White Male — higher than the paper's sparse
// crawl did, and the paper's BM-above-WF ordering inverts under EMD.)
func TestTable8GroupShape(t *testing.T) {
	for _, measure := range []core.MarketplaceMeasure{core.MeasureEMD, core.MeasureExposure} {
		tbl := crawlTable(t, measure)
		res := groupRanking(t, tbl)
		if len(res) != 11 {
			t.Fatalf("%v: %d groups ranked, want 11", measure, len(res))
		}
		names := make([]string, len(res))
		for i, r := range res {
			names[i] = nameOf(t, tbl, r.Key)
			t.Logf("%v %-14s %.3f", measure, names[i], r.Value)
		}
		if measure == core.MeasureEMD {
			if names[0] != "Asian Female" {
				t.Errorf("EMD: most unfair = %s, want Asian Female", names[0])
			}
		} else {
			// Under exposure the "Asian" aggregate can edge out Asian
			// Female (it also collects the pages where only Asian Males
			// appear); the certified shape is that Asian Female is in
			// the top 2 and an Asian group tops the ranking.
			if pos := indexOfString(names, "Asian Female"); pos > 1 {
				t.Errorf("exposure: Asian Female ranked %d, want top 2", pos)
			}
			if names[0] != "Asian" && names[0] != "Asian Female" && names[0] != "Asian Male" {
				t.Errorf("exposure: most unfair = %s, want an Asian group", names[0])
			}
		}
		if pos := indexOfString(names, "Asian Male"); pos > 3 {
			t.Errorf("%v: Asian Male ranked %d, want top 4", measure, pos)
		}
		if pos := indexOfString(names, "Asian"); pos > 3 {
			t.Errorf("%v: Asian ranked %d, want top 4", measure, pos)
		}
		if measure == core.MeasureEMD {
			if indexOfString(names, "Black Female") > indexOfString(names, "Black Male") {
				t.Errorf("EMD: Black Female should rank above Black Male")
			}
			if indexOfString(names, "White Female") > indexOfString(names, "White Male") {
				t.Errorf("EMD: White Female should rank above White Male")
			}
			if indexOfString(names, "Asian Female") > indexOfString(names, "Asian Male") {
				t.Errorf("EMD: Asian Female should rank above Asian Male")
			}
			// White Male is the fairest of the six full groups.
			wm := indexOfString(names, "White Male")
			for _, full := range []string{"Asian Female", "Asian Male", "Black Female", "Black Male", "White Female"} {
				if indexOfString(names, full) > wm {
					t.Errorf("EMD: %s ranked below White Male", full)
				}
			}
		}
	}
}

// TestTable9CategoryShape asserts Table 9's shape: Handyman and Yard Work
// are the most unfair categories, Delivery and Furniture Assembly the
// fairest, under both measures.
func TestTable9CategoryShape(t *testing.T) {
	for _, measure := range []core.MarketplaceMeasure{core.MeasureEMD, core.MeasureExposure} {
		avgs := categoryAverages(crawlTable(t, measure))
		type kv struct {
			name string
			v    float64
		}
		var ranked []kv
		for name, v := range avgs {
			ranked = append(ranked, kv{name, v})
		}
		sort.Slice(ranked, func(i, j int) bool { return ranked[i].v > ranked[j].v })
		names := make([]string, len(ranked))
		for i, r := range ranked {
			names[i] = r.name
			t.Logf("%v %-18s %.3f", measure, r.name, r.v)
		}
		if top := names[0]; top != "Handyman" && top != "Yard Work" {
			t.Errorf("%v: most unfair category = %s, want Handyman or Yard Work", measure, top)
		}
		if indexOfString(names, "Handyman") > 1 {
			t.Errorf("%v: Handyman not in top 2", measure)
		}
		if pos := indexOfString(names, "Delivery"); pos < 5 {
			t.Errorf("%v: Delivery ranked %d, want among the 3 fairest", measure, pos)
		}
		if pos := indexOfString(names, "Furniture Assembly"); pos < 5 {
			t.Errorf("%v: Furniture Assembly ranked %d, want among the 3 fairest", measure, pos)
		}
	}
}

// TestTables10And11LocationShape asserts the location shape: Birmingham UK
// and Oklahoma City among the least fair, Chicago and San Francisco among
// the fairest. EMD separates the top cities sharply; exposure compresses
// them, so its bound is looser.
func TestTables10And11LocationShape(t *testing.T) {
	for _, measure := range []core.MarketplaceMeasure{core.MeasureEMD, core.MeasureExposure} {
		res := locationRanking(t, crawlTable(t, measure))
		keys := make([]string, len(res))
		for i, r := range res {
			keys[i] = r.Key
		}
		t.Logf("%v unfairest locations: %v", measure, keys[:10])
		t.Logf("%v fairest locations: %v", measure, keys[len(keys)-10:])
		topBound, okcBound := 2, 3
		if measure == core.MeasureExposure {
			topBound, okcBound = 9, 9
		}
		if got := rankOf(res, "Birmingham, UK"); got > topBound {
			t.Errorf("%v: Birmingham ranked %d, want within top %d least fair", measure, got, topBound+1)
		}
		if got := rankOf(res, "Oklahoma City, OK"); got > okcBound {
			t.Errorf("%v: Oklahoma City ranked %d, want within top %d least fair", measure, got, okcBound+1)
		}
		n := len(res)
		if got := rankOf(res, "Chicago, IL"); got < n-5 {
			t.Errorf("%v: Chicago ranked %d of %d, want among 5 fairest", measure, got, n)
		}
		if got := rankOf(res, "San Francisco, CA"); got < n-5 {
			t.Errorf("%v: San Francisco ranked %d of %d, want among 5 fairest", measure, got, n)
		}
	}
}

// TestTable12GenderComparison asserts the paper's Table 12: overall,
// females are treated less fairly than males under exposure, and the
// comparison reverses (equalizes) exactly at the FemaleFavored cities.
func TestTable12GenderComparison(t *testing.T) {
	tbl := crawlTable(t, core.MeasureExposure)
	cmp, err := compare.NewDefinedOnly(tbl).Groups(
		core.NewGroup(core.Predicate{Attr: "gender", Value: "Male"}).Key(),
		core.NewGroup(core.Predicate{Attr: "gender", Value: "Female"}).Key(),
		compare.ByLocation, compare.Scope{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("overall: male %.4f female %.4f", cmp.Overall1, cmp.Overall2)
	if cmp.Overall1 >= cmp.Overall2 {
		t.Fatalf("overall: males (%.4f) should be treated more fairly than females (%.4f)",
			cmp.Overall1, cmp.Overall2)
	}
	reversed := make(map[string]bool, len(cmp.Reversed))
	for _, b := range cmp.Reversed {
		reversed[b.B] = true
		t.Logf("reversal at %s: male %.4f female %.4f", b.B, b.V1, b.V2)
	}
	var wantFF []string
	for _, c := range Cities() {
		if c.FemaleFavored {
			wantFF = append(wantFF, string(c.Name))
		}
	}
	for _, ff := range wantFF {
		if !reversed[ff] {
			t.Errorf("FemaleFavored city %s missing from reversal set", ff)
		}
	}
	if len(cmp.Reversed) > len(wantFF)+3 {
		t.Errorf("reversal set too large: %d locations (FF cities: %d)", len(cmp.Reversed), len(wantFF))
	}
}

func ethnicityKeys() []string {
	return []string{
		core.NewGroup(core.Predicate{Attr: "ethnicity", Value: "Asian"}).Key(),
		core.NewGroup(core.Predicate{Attr: "ethnicity", Value: "Black"}).Key(),
		core.NewGroup(core.Predicate{Attr: "ethnicity", Value: "White"}).Key(),
	}
}

// TestTables13And14JobComparison asserts the shape of Tables 13–14: Lawn
// Mowing is less fair than Event Decorating overall, but for White workers
// the EMD comparison reverses (Table 13) while under exposure the reversal
// shows for Black workers (Table 14) — the measure disagreement the paper
// flags for future investigation.
func TestTables13And14JobComparison(t *testing.T) {
	white := core.NewGroup(core.Predicate{Attr: "ethnicity", Value: "White"}).Key()
	black := core.NewGroup(core.Predicate{Attr: "ethnicity", Value: "Black"}).Key()
	for _, tc := range []struct {
		measure  core.MarketplaceMeasure
		mustFlip string
	}{
		{core.MeasureEMD, white},
		{core.MeasureExposure, black},
	} {
		tbl := crawlTable(t, tc.measure)
		cmp, err := compare.NewDefinedOnly(tbl).Queries(
			"Lawn Mowing", "Event Decorating", compare.ByGroup,
			compare.Scope{Groups: ethnicityKeys()})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%v overall: Lawn Mowing %.3f Event Decorating %.3f", tc.measure, cmp.Overall1, cmp.Overall2)
		for _, b := range cmp.All {
			g, _ := tbl.GroupByKey(b.B)
			t.Logf("%v %-6s LM %.3f ED %.3f reversed=%v", tc.measure, g.Name(), b.V1, b.V2, b.Reversed)
		}
		if cmp.Overall1 <= cmp.Overall2 {
			t.Errorf("%v: Lawn Mowing (%.3f) should be less fair than Event Decorating (%.3f) overall",
				tc.measure, cmp.Overall1, cmp.Overall2)
		}
		found := false
		for _, b := range cmp.Reversed {
			if b.B == tc.mustFlip {
				found = true
			}
		}
		if !found {
			g, _ := tbl.GroupByKey(tc.mustFlip)
			t.Errorf("%v: expected reversal for %s", tc.measure, g.Name())
		}
	}
}

// TestTable15LocationComparison asserts Table 15's shape: the San
// Francisco Bay Area is fairer than Chicago across General Cleaning jobs,
// except for the three organizing jobs, where the trend inverts.
func TestTable15LocationComparison(t *testing.T) {
	tbl := crawlTable(t, core.MeasureEMD)
	gc, _ := CategoryByName("General Cleaning")
	cmp, err := compare.NewDefinedOnly(tbl).Locations(
		"San Francisco Bay Area, CA", "Chicago, IL", compare.ByQuery,
		compare.Scope{Queries: QueriesOf(gc)})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("overall: SF Bay %.3f Chicago %.3f", cmp.Overall1, cmp.Overall2)
	if cmp.Overall1 >= cmp.Overall2 {
		t.Errorf("SF Bay (%.3f) should be fairer than Chicago (%.3f) overall", cmp.Overall1, cmp.Overall2)
	}
	reversed := map[string]bool{}
	for _, b := range cmp.All {
		if b.Reversed {
			reversed[b.B] = true
		}
		t.Logf("%-20s SF Bay %.3f Chicago %.3f reversed=%v", b.B, b.V1, b.V2, b.Reversed)
	}
	for _, job := range []string{"Back To Organized", "Organize & Declutter", "Organize Closet"} {
		if !reversed[job] {
			t.Errorf("expected reversal for %q", job)
		}
	}
	for _, job := range []string{"Home Cleaning", "Carpet Cleaning", "Kitchen Cleaning"} {
		if reversed[job] {
			t.Errorf("unexpected reversal for %q", job)
		}
	}
}
