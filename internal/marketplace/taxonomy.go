package marketplace

import "fairjob/internal/core"

// Category is one of the eight job categories the paper's Table 9 ranks.
// Each category fans out into concrete job queries — the paper's 5,361
// queries are (job, location) combinations, while its Table 9 aggregates
// unfairness per category.
type Category struct {
	Name string
	// Bias is the category's discrimination intensity in [0, 1],
	// calibrated to the EMD ordering of Table 9 (Handyman most unfair,
	// Delivery/Furniture Assembly fairest).
	Bias float64
	Jobs []string
}

// Categories returns the eight job categories with their concrete jobs.
func Categories() []Category {
	return []Category{
		{Name: "Handyman", Bias: 1.00, Jobs: []string{
			"Handyman", "Hang Pictures", "Mount TV", "Fix Leaky Faucet",
			"Install Shelves", "Door Repair", "Light Fixture Installation",
			"Window Repair", "Drywall Patching", "Fence Repair",
			"Deck Repair", "Caulking",
		}},
		{Name: "Yard Work", Bias: 0.92, Jobs: []string{
			"Yard Work", "Lawn Mowing", "Garage Cleaning", "Patio Painting",
			"Leaf Raking", "Weed Removal", "Hedge Trimming",
			"Garden Planting", "Gutter Cleaning", "Snow Removal",
			"Mulching", "Pressure Washing",
		}},
		{Name: "Event Staffing", Bias: 0.78, Jobs: []string{
			"Event Staffing", "Event Decorating", "Bartending Help",
			"Party Setup", "Party Cleanup", "Coat Check", "Ticket Scanning",
			"Catering Help", "Wait Staff", "Photo Booth Attendant",
			"Greeter", "Usher",
		}},
		{Name: "General Cleaning", Bias: 0.70, Jobs: []string{
			"General Cleaning", "Home Cleaning", "Office Cleaning",
			"Private Cleaning", "Deep Cleaning", "Move Out Cleaning",
			"Back To Organized", "Organize & Declutter", "Organize Closet",
			"Window Cleaning", "Carpet Cleaning", "Kitchen Cleaning",
		}},
		{Name: "Moving", Bias: 0.55, Jobs: []string{
			"Moving Job", "Help Moving", "Packing Services",
			"Unpacking Services", "Loading Help", "Heavy Lifting",
			"Furniture Moving", "Storage Unit Help", "Truck Loading",
			"Apartment Move", "Office Move", "Piano Moving",
		}},
		{Name: "Furniture Assembly", Bias: 0.42, Jobs: []string{
			"Furniture Assembly", "IKEA Assembly", "Desk Assembly",
			"Bookshelf Assembly", "Bed Frame Assembly", "Wardrobe Assembly",
			"Crib Assembly", "Table Assembly", "Chair Assembly",
			"Dresser Assembly", "Outdoor Furniture Assembly",
			"Office Furniture Assembly",
		}},
		{Name: "Run Errands", Bias: 0.50, Jobs: []string{
			"Run Errand", "Errand Service", "Wait In Line",
			"Post Office Run", "Dry Cleaning Pickup", "Bank Errand",
			"Gift Shopping", "Pet Supply Run", "Car Wash Run",
			"Prescription Run", "Library Return", "Senior Errands",
		}},
		{Name: "Delivery", Bias: 0.38, Jobs: []string{
			"Delivery", "Courier Service", "Grocery Delivery",
			"Food Delivery", "Package Pickup", "Furniture Delivery",
			"Appliance Delivery", "Document Delivery", "Flower Delivery",
			"Pharmacy Pickup", "Laundry Pickup", "Return Items",
		}},
	}
}

// CategoryOf returns the category a concrete job query belongs to.
func CategoryOf(job core.Query) (Category, bool) {
	for _, cat := range Categories() {
		for _, j := range cat.Jobs {
			if core.Query(j) == job {
				return cat, true
			}
		}
	}
	return Category{}, false
}

// CategoryByName returns the category with the given name.
func CategoryByName(name string) (Category, bool) {
	for _, cat := range Categories() {
		if cat.Name == name {
			return cat, true
		}
	}
	return Category{}, false
}

// AllJobs returns every concrete job query across all categories.
func AllJobs() []core.Query {
	var out []core.Query
	for _, cat := range Categories() {
		for _, j := range cat.Jobs {
			out = append(out, core.Query(j))
		}
	}
	return out
}

// QueriesOf returns the concrete job queries of a category as core.Query
// values, for scoping quantification and comparison runs to a category.
func QueriesOf(cat Category) []core.Query {
	out := make([]core.Query, len(cat.Jobs))
	for i, j := range cat.Jobs {
		out[i] = core.Query(j)
	}
	return out
}

// JobIndex returns the position of a job within its category's job list,
// or -1 when the job is not in the category.
func (c Category) JobIndex(job core.Query) int {
	for i, j := range c.Jobs {
		if core.Query(j) == job {
			return i
		}
	}
	return -1
}

// maleSkewedCategories are the categories in which female participation is
// thin at the individual-job level (see servesJob in market.go).
var maleSkewedCategories = map[string]bool{
	"Handyman": true, "Yard Work": true, "Moving": true,
}
