package marketplace

import (
	"fmt"

	"fairjob/internal/core"
)

// Gender and ethnicity values used across the simulation. They mirror the
// pre-defined AMT labeling categories of §5.1.1.
const (
	Male   = "Male"
	Female = "Female"

	Asian = "Asian"
	Black = "Black"
	White = "White"
)

// Genders lists the gender domain.
func Genders() []string { return []string{Male, Female} }

// Ethnicities lists the ethnicity domain.
func Ethnicities() []string { return []string{Asian, Black, White} }

// GroupBias describes how discrimination hits members of one demographic
// group. Rather than a uniform score shift — which would make every
// group's score distribution a pure translation of every other's, and
// translations telescope under the symmetric EMD measure — each member is
// either hit deeply (pushed toward the bottom of result pages), hit
// shallowly, or left alone. The mixture shape is what lets the calibrated
// model reproduce the paper's Table 8 ordering, where both the most- and
// least-favored groups sit at the extremes of measured unfairness.
type GroupBias struct {
	// DeepProb is the probability a member takes the deep penalty.
	DeepProb float64
	// DeepDepth is the deep score penalty before scaling.
	DeepDepth float64
	// ShallowProb is the probability of the shallow penalty instead.
	ShallowProb float64
	// ShallowDepth is the shallow score penalty before scaling.
	ShallowDepth float64
}

// Expected returns the mean penalty of the mixture.
func (b GroupBias) Expected() float64 {
	return b.DeepProb*b.DeepDepth + b.ShallowProb*b.ShallowDepth
}

// BiasModel is the parameterized discrimination model of the simulator.
// The effective penalty subtracted from a tasker's ranking score is
//
//	Strength · hit(u, group) · categoryBias · cityScale(cityBias)
//
// where u is the tasker's persistent uniform draw and hit is the group's
// mixture. In cities flagged FemaleFavored the gender is flipped before
// the group lookup (damped by FemaleFavoredDamping to keep the city's
// total penalty mass comparable despite the 72/28 gender imbalance),
// producing the paper's Table 12 reversal locations.
type BiasModel struct {
	// Strength is the global bias multiplier; 0 disables discrimination
	// entirely (the "fair platform" null model used in tests).
	Strength float64
	// Groups maps "Gender/Ethnicity" to the group's penalty mixture.
	Groups map[string]GroupBias
	// RatingBias is how strongly group penalties contaminate consumer
	// ratings (the consumer-feedback loop of Hannak et al. and
	// Rosenblat et al. that the paper's introduction cites). Ratings
	// feed back into ranking scores.
	RatingBias float64
	// FemaleFavoredDamping scales the female penalty depth relative to
	// the male one in FemaleFavored cities (< 1 favors females).
	FemaleFavoredDamping float64
	// JobEthnicityBias replaces an ethnicity's penalty mixture on
	// specific jobs: on "Event Decorating", Black workers take a deep
	// Asian-like mixture. Pulling Black toward Asian on one job narrows
	// the Black-Asian contrast there while widening both groups'
	// distance to White, which is what makes the Lawn-Mowing-vs-
	// Event-Decorating comparison reverse for White under EMD (the
	// paper's Table 13) and for Black under exposure (Table 14).
	JobEthnicityBias map[string]map[string]GroupBias
	// JobBoost multiplies the penalty on specific jobs everywhere: Lawn
	// Mowing is the most biased Yard Work job, keeping the Lawn-Mowing
	// side of the Tables 13–14 comparison above Event Decorating under
	// both measures.
	JobBoost map[string]float64
	// CityJobBoost multiplies the penalty for specific (job, city)
	// pairs: the organizing jobs are disproportionately biased in the
	// San Francisco Bay Area, producing the Table 15 reversal.
	CityJobBoost map[string]map[string]float64
}

// GroupKey builds the Groups lookup key.
func GroupKey(gender, ethnicity string) string {
	return gender + "/" + ethnicity
}

// DefaultBiasModel returns the calibrated model used by the experiment
// harness. Calibration targets the shape of the paper's Tables 8–15; see
// EXPERIMENTS.md for the certified properties.
func DefaultBiasModel() *BiasModel {
	return &BiasModel{
		Strength:             0.45,
		RatingBias:           0.35,
		FemaleFavoredDamping: 0.5,
		JobEthnicityBias: map[string]map[string]GroupBias{
			"Event Decorating": {
				Black: {DeepProb: 0.85, DeepDepth: 0.55, ShallowProb: 0.08, ShallowDepth: 0.22},
				Asian: {DeepProb: 0.52, DeepDepth: 0.50, ShallowProb: 0.20, ShallowDepth: 0.20},
			},
		},
		JobBoost: map[string]float64{
			"Lawn Mowing": 1.45,
		},
		CityJobBoost: map[string]map[string]float64{
			"Back To Organized":    {"San Francisco Bay Area, CA": 2.5},
			"Organize & Declutter": {"San Francisco Bay Area, CA": 2.8},
			"Organize Closet":      {"San Francisco Bay Area, CA": 2.5},
		},
		Groups: map[string]GroupBias{
			// Asian Female: almost everyone pushed to the page bottom.
			GroupKey(Female, Asian): {DeepProb: 0.88, DeepDepth: 0.55, ShallowProb: 0.06, ShallowDepth: 0.22},
			// Asian Male: pervasive but mostly shallow displacement.
			GroupKey(Male, Asian): {DeepProb: 0.62, DeepDepth: 0.50, ShallowProb: 0.22, ShallowDepth: 0.21},
			// Black Female: frequent shallow hits, occasional deep.
			GroupKey(Female, Black): {DeepProb: 0.04, DeepDepth: 0.45, ShallowProb: 0.28, ShallowDepth: 0.13},
			// Black Male: occasional shallow hits.
			GroupKey(Male, Black): {DeepProb: 0.02, DeepDepth: 0.40, ShallowProb: 0.26, ShallowDepth: 0.11},
			// White Female: rare, mild hits.
			GroupKey(Female, White): {DeepProb: 0.02, DeepDepth: 0.35, ShallowProb: 0.18, ShallowDepth: 0.08},
			// White Male: essentially untouched.
			GroupKey(Male, White): {DeepProb: 0, DeepDepth: 0, ShallowProb: 0.05, ShallowDepth: 0.05},
		},
	}
}

// FairModel returns a null model with no discrimination, used as the
// control in validation tests: with it, measured unfairness must hover
// near the sampling-noise floor for every group.
func FairModel() *BiasModel {
	m := DefaultBiasModel()
	m.Strength = 0
	m.RatingBias = 0
	return m
}

// effectiveParams resolves the (group params, depth damping) for a tasker
// in a city. In FemaleFavored cities both genders take the (milder) male
// penalty mixture of their ethnicity and females are additionally damped —
// females end up treated *better* than comparable males there, without the
// penalty-mass inflation a naive parameter swap would cause in a 72%-male
// pool.
func (m *BiasModel) effectiveParams(gender, ethnicity string, city City) (GroupBias, float64) {
	g := gender
	damp := 1.0
	if city.FemaleFavored {
		g = Male
		if gender == Female {
			damp = m.FemaleFavoredDamping
		}
	}
	gb, ok := m.Groups[GroupKey(g, ethnicity)]
	if !ok {
		panic(fmt.Sprintf("marketplace: no bias entry for %s/%s", gender, ethnicity))
	}
	return gb, damp
}

// jobBias returns the mixture override for (job, ethnicity), if any.
func (m *BiasModel) jobBias(job, ethnicity string) (GroupBias, bool) {
	if byEth, ok := m.JobEthnicityBias[job]; ok {
		gb, ok := byEth[ethnicity]
		return gb, ok
	}
	return GroupBias{}, false
}

// JobCityBoost returns the penalty multiplier for a (job, city) pair,
// including the job-wide boost (1 when no interaction is configured).
func (m *BiasModel) JobCityBoost(job string, city core.Location) float64 {
	boost := 1.0
	if b, ok := m.JobBoost[job]; ok {
		boost *= b
	}
	if byCity, ok := m.CityJobBoost[job]; ok {
		if b, ok := byCity[string(city)]; ok {
			boost *= b
		}
	}
	return boost
}

// Hit returns the (pre-Strength-scaling) penalty depth for a tasker with
// persistent uniform draw u and the given demographics in the given city.
// It panics on demographics outside the schema, which indicates a
// generation bug rather than data noise.
func (m *BiasModel) Hit(u float64, gender, ethnicity string, city City) float64 {
	return m.HitOnJob(u, gender, ethnicity, "", city)
}

// HitOnJob is Hit with the job-level ethnicity mixture override applied
// (an empty job name skips overrides).
func (m *BiasModel) HitOnJob(u float64, gender, ethnicity, job string, city City) float64 {
	gb, damp := m.effectiveParams(gender, ethnicity, city)
	if job != "" {
		if override, ok := m.jobBias(job, ethnicity); ok {
			gb = override
		}
	}
	depth := 0.0
	switch {
	case u < gb.DeepProb:
		depth = gb.DeepDepth
	case u < gb.DeepProb+gb.ShallowProb:
		depth = gb.ShallowDepth
	}
	return depth * damp
}

// ExpectedPenalty returns the mean mixture penalty for a group in a city,
// used by the rating-contamination step.
func (m *BiasModel) ExpectedPenalty(gender, ethnicity string, city City) float64 {
	gb, damp := m.effectiveParams(gender, ethnicity, city)
	return gb.Expected() * damp
}

// cityScale converts a city's bias intensity into the multiplicative
// penalty scale; the 0.25 floor keeps some discrimination everywhere (the
// paper found no perfectly fair location) while the 4× range separates
// the fairest and unfairest cities sharply.
func cityScale(bias float64) float64 {
	return 0.25 + 0.75*bias
}
