package marketplace

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"fairjob/internal/core"
	"fairjob/internal/stats"
)

// DefaultPoolSize is the total tasker supply across the 56 cities
// (132 per city). It is deliberately larger than the paper's 3,311
// *unique taskers appearing in result pages*: with supply above the
// 50-worker page cap, heavily penalized workers fall off the page
// entirely, and that truncation is the mechanism behind several of the
// paper's aggregate phenomena (pages missing one gender, discriminated
// groups absent from the pages their beneficiaries are measured on).
// See DESIGN.md §2.
const DefaultPoolSize = 56 * 132

// DefaultPageSize is the result-page cap; TaskRabbit returned at most 50
// taskers per query (§5.1.1).
const DefaultPageSize = 50

// PaperQueryCount is the number of (job, location) queries the paper
// crawled; the simulator's offer matrix is trimmed to exactly this size.
const PaperQueryCount = 5361

// Config parameterizes the marketplace simulation.
type Config struct {
	// Seed drives all generation; equal seeds give identical markets.
	Seed uint64
	// NumTaskers defaults to DefaultPoolSize.
	NumTaskers int
	// PageSize defaults to DefaultPageSize.
	PageSize int
	// Bias defaults to DefaultBiasModel().
	Bias *BiasModel
	// Shares defaults to DefaultShares().
	Shares *PopulationShares
}

func (c Config) withDefaults() Config {
	if c.NumTaskers == 0 {
		c.NumTaskers = DefaultPoolSize
	}
	if c.PageSize == 0 {
		c.PageSize = DefaultPageSize
	}
	if c.Bias == nil {
		c.Bias = DefaultBiasModel()
	}
	if c.Shares == nil {
		s := DefaultShares()
		c.Shares = &s
	}
	return c
}

// Offer is one crawlable (job, city) query.
type Offer struct {
	Job  core.Query
	City core.Location
}

// Marketplace is the simulated TaskRabbit instance: a tasker pool plus a
// biased scoring function used to rank taskers per (job, city) query.
type Marketplace struct {
	cfg     Config
	Taskers []*Tasker
	byCity  map[core.Location][]*Tasker
	byID    map[string]*Tasker
	offers  []Offer
}

// New builds a marketplace. Generation is fully deterministic in
// cfg.Seed.
func New(cfg Config) *Marketplace {
	cfg = cfg.withDefaults()
	rng := stats.NewRNG(cfg.Seed)
	m := &Marketplace{
		cfg:    cfg,
		byCity: make(map[core.Location][]*Tasker),
		byID:   make(map[string]*Tasker),
	}
	m.Taskers = generatePool(rng, cfg.NumTaskers, *cfg.Shares)
	for _, t := range m.Taskers {
		m.byCity[t.City] = append(m.byCity[t.City], t)
		m.byID[t.ID] = t
	}
	m.assignRatings(rng)
	m.offers = buildOffers()
	return m
}

// assignRatings derives consumer ratings from quality with a
// bias-contaminated component: the consumer-rating feedback loop the
// paper's introduction describes as a bias amplifier.
func (m *Marketplace) assignRatings(rng *stats.RNG) {
	for _, t := range m.Taskers {
		city, _ := CityByName(t.City)
		penalty := m.cfg.Bias.ExpectedPenalty(t.Gender, t.Ethnicity, city)
		// No per-tasker noise here: like the other generated attributes,
		// ratings are deterministic given quality and city so that
		// cross-city unfairness differences reflect bias intensity, not
		// rating luck (see stratifyQuality).
		raw := 3.2 + 1.8*t.Quality -
			m.cfg.Bias.RatingBias*penalty*city.Bias
		t.Rating = stats.Clamp(raw, 1, 5)
	}
}

// buildOffers enumerates all (job, city) pairs and trims the set to
// exactly PaperQueryCount by dropping the pairs with the smallest content
// hashes — a deterministic stand-in for the handful of jobs TaskRabbit
// did not offer in every city.
func buildOffers() []Offer {
	var all []Offer
	for _, city := range Cities() {
		for _, job := range AllJobs() {
			all = append(all, Offer{Job: job, City: city.Name})
		}
	}
	if len(all) <= PaperQueryCount {
		return all
	}
	sort.Slice(all, func(i, j int) bool {
		hi := offerHash(all[i])
		hj := offerHash(all[j])
		if hi != hj {
			return hi < hj
		}
		if all[i].City != all[j].City {
			return all[i].City < all[j].City
		}
		return all[i].Job < all[j].Job
	})
	trimmed := all[len(all)-PaperQueryCount:]
	sort.Slice(trimmed, func(i, j int) bool {
		if trimmed[i].City != trimmed[j].City {
			return trimmed[i].City < trimmed[j].City
		}
		return trimmed[i].Job < trimmed[j].Job
	})
	return trimmed
}

func offerHash(o Offer) uint64 {
	h := fnv.New64a()
	h.Write([]byte(o.Job))
	h.Write([]byte{0})
	h.Write([]byte(o.City))
	return h.Sum64()
}

// Offers returns the crawlable (job, city) queries — exactly
// PaperQueryCount of them.
func (m *Marketplace) Offers() []Offer {
	return append([]Offer(nil), m.offers...)
}

// TaskerByID resolves a tasker.
func (m *Marketplace) TaskerByID(id string) (*Tasker, bool) {
	t, ok := m.byID[id]
	return t, ok
}

// Score returns the platform's ranking score f_q^l(w) for a tasker on a
// given (job, city) query: a quality/rating/track-record composite minus
// the discrimination penalty, plus per-query noise. Deterministic in
// (seed, tasker, job, city).
func (m *Marketplace) Score(t *Tasker, job core.Query, cityName core.Location) float64 {
	city, ok := CityByName(cityName)
	if !ok {
		panic(fmt.Sprintf("marketplace: unknown city %q", cityName))
	}
	cat, ok := CategoryOf(job)
	if !ok {
		panic(fmt.Sprintf("marketplace: unknown job %q", job))
	}
	base := 0.55*t.Quality +
		0.25*(t.Rating-1)/4 +
		0.20*math.Min(float64(t.Completed)/400, 1)
	penalty := m.cfg.Bias.Strength *
		m.cfg.Bias.HitOnJob(t.BiasU, t.Gender, t.Ethnicity, string(job), city) *
		cat.Bias * cityScale(city.Bias) *
		m.cfg.Bias.JobCityBoost(string(job), cityName)
	noise := m.queryNoise(t.ID, job, cityName)
	return stats.Clamp(base-penalty+noise, 0, 1)
}

// queryNoise is small deterministic per-(tasker, job, city) noise so that
// rankings differ across jobs within a category.
func (m *Marketplace) queryNoise(id string, job core.Query, city core.Location) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%s", m.cfg.Seed, id, job, city)
	r := stats.NewRNG(h.Sum64())
	return r.Normal(0, 0.015)
}

// RunQuery executes one (job, city) query: all taskers of the city serving
// the job's category, ranked by descending score, capped at the page
// size. Worker attributes carry ground-truth demographics; use
// labeling.Relabel to substitute observed (AMT-style) labels.
func (m *Marketplace) RunQuery(job core.Query, cityName core.Location) *core.MarketplaceRanking {
	cat, ok := CategoryOf(job)
	if !ok {
		panic(fmt.Sprintf("marketplace: unknown job %q", job))
	}
	type scored struct {
		t *Tasker
		s float64
	}
	city, _ := CityByName(cityName)
	jobIdx := cat.JobIndex(job)
	var candidates []scored
	for _, t := range m.byCity[cityName] {
		if t.ServesCategory(cat.Name) && servesJob(t, cat, jobIdx, city) {
			candidates = append(candidates, scored{t, m.Score(t, job, cityName)})
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].s != candidates[j].s {
			return candidates[i].s > candidates[j].s
		}
		return candidates[i].t.ID < candidates[j].t.ID
	})
	if len(candidates) > m.cfg.PageSize {
		candidates = candidates[:m.cfg.PageSize]
	}
	r := &core.MarketplaceRanking{Query: job, Location: cityName}
	for i, c := range candidates {
		r.Workers = append(r.Workers, core.RankedWorker{
			ID:    c.t.ID,
			Attrs: c.t.Attrs(),
			Rank:  i + 1,
			Score: c.s,
		})
	}
	return r
}

// servesJob decides whether a tasker serving a category offers one
// specific job of it. Males offer every job of their categories. In the
// male-skewed categories, women skip a fixed third of the jobs, so those
// job pages have no women at all. That page-level absence is what makes
// the defined-only gender aggregates asymmetric (the paper's Table 12:
// males average in many zero-unfairness pages women never appear on,
// ending up "treated less unfairly" overall). In FemaleFavored cities
// women work every job, pages always include both genders, and the
// per-page gender unfairness values — which are provably equal whenever
// both genders appear — equalize the aggregate: the reversal the paper
// reports for exactly those locations.
func servesJob(t *Tasker, cat Category, jobIdx int, city City) bool {
	if t.Gender == Male || !maleSkewedCategories[cat.Name] || city.FemaleFavored {
		return true
	}
	return jobIdx%3 != 0
}

// CrawlAll runs every offered query — the paper's 5,361-query crawl.
func (m *Marketplace) CrawlAll() []*core.MarketplaceRanking {
	out := make([]*core.MarketplaceRanking, 0, len(m.offers))
	for _, o := range m.offers {
		out = append(out, m.RunQuery(o.Job, o.City))
	}
	return out
}
