package marketplace

import (
	"math"
	"testing"

	"fairjob/internal/core"
)

func TestCitiesCount(t *testing.T) {
	cities := Cities()
	if len(cities) != 56 {
		t.Fatalf("cities = %d, want 56 (the paper's TaskRabbit footprint)", len(cities))
	}
	seen := map[core.Location]bool{}
	for _, c := range cities {
		if seen[c.Name] {
			t.Errorf("duplicate city %q", c.Name)
		}
		seen[c.Name] = true
		if c.Bias < 0 || c.Bias > 1 {
			t.Errorf("city %q bias %v out of [0,1]", c.Name, c.Bias)
		}
	}
}

func TestCityByName(t *testing.T) {
	c, ok := CityByName("Birmingham, UK")
	if !ok || c.Country != "UK" {
		t.Fatalf("CityByName = %+v, %v", c, ok)
	}
	if _, ok := CityByName("Gotham"); ok {
		t.Fatal("unknown city resolved")
	}
}

func TestTaxonomy(t *testing.T) {
	cats := Categories()
	if len(cats) != 8 {
		t.Fatalf("categories = %d, want 8 (Table 9)", len(cats))
	}
	jobs := AllJobs()
	if len(jobs) != 96 {
		t.Fatalf("jobs = %d, want 96 (8 categories × 12 jobs)", len(jobs))
	}
	seen := map[core.Query]bool{}
	for _, j := range jobs {
		if seen[j] {
			t.Errorf("duplicate job %q", j)
		}
		seen[j] = true
	}
	cat, ok := CategoryOf("Lawn Mowing")
	if !ok || cat.Name != "Yard Work" {
		t.Fatalf("CategoryOf(Lawn Mowing) = %v, %v", cat.Name, ok)
	}
	if _, ok := CategoryOf("Rocket Surgery"); ok {
		t.Fatal("unknown job categorized")
	}
	if _, ok := CategoryByName("Delivery"); !ok {
		t.Fatal("CategoryByName failed")
	}
	if idx := cat.JobIndex("Lawn Mowing"); idx != 1 {
		t.Fatalf("JobIndex = %d", idx)
	}
	if idx := cat.JobIndex("Handyman"); idx != -1 {
		t.Fatalf("JobIndex of foreign job = %d", idx)
	}
	if got := len(QueriesOf(cat)); got != 12 {
		t.Fatalf("QueriesOf = %d", got)
	}
}

func TestOffersMatchPaperQueryCount(t *testing.T) {
	m := New(Config{Seed: 1})
	offers := m.Offers()
	if len(offers) != PaperQueryCount {
		t.Fatalf("offers = %d, want %d", len(offers), PaperQueryCount)
	}
	seen := map[Offer]bool{}
	for _, o := range offers {
		if seen[o] {
			t.Errorf("duplicate offer %+v", o)
		}
		seen[o] = true
	}
}

func TestPoolSizeAndQuotas(t *testing.T) {
	m := New(Config{Seed: 1})
	if len(m.Taskers) != DefaultPoolSize {
		t.Fatalf("pool = %d, want %d", len(m.Taskers), DefaultPoolSize)
	}
	// Demographic shares match Figures 7–8 (~72% male, ~66% white).
	var males, white, asian int
	for _, tk := range m.Taskers {
		if tk.Gender == Male {
			males++
		}
		switch tk.Ethnicity {
		case White:
			white++
		case Asian:
			asian++
		}
	}
	n := float64(len(m.Taskers))
	if share := float64(males) / n; math.Abs(share-0.72) > 0.02 {
		t.Errorf("male share = %v, want ≈0.72", share)
	}
	if share := float64(white) / n; math.Abs(share-0.66) > 0.02 {
		t.Errorf("white share = %v, want ≈0.66", share)
	}
	if share := float64(asian) / n; math.Abs(share-0.14) > 0.02 {
		t.Errorf("asian share = %v, want ≈0.14", share)
	}
}

func TestEveryCityCoversEveryFullGroup(t *testing.T) {
	m := New(Config{Seed: 1})
	counts := map[core.Location]map[string]int{}
	for _, tk := range m.Taskers {
		if counts[tk.City] == nil {
			counts[tk.City] = map[string]int{}
		}
		counts[tk.City][tk.Gender+"/"+tk.Ethnicity]++
	}
	for _, c := range Cities() {
		for _, g := range Genders() {
			for _, e := range Ethnicities() {
				if counts[c.Name][g+"/"+e] == 0 {
					t.Errorf("city %s has no %s/%s taskers", c.Name, g, e)
				}
			}
		}
	}
}

func TestMarketplaceDeterminism(t *testing.T) {
	a := New(Config{Seed: 42})
	b := New(Config{Seed: 42})
	ra := a.RunQuery("Home Cleaning", "San Francisco, CA")
	rb := b.RunQuery("Home Cleaning", "San Francisco, CA")
	if len(ra.Workers) != len(rb.Workers) {
		t.Fatalf("page sizes differ: %d vs %d", len(ra.Workers), len(rb.Workers))
	}
	for i := range ra.Workers {
		if ra.Workers[i].ID != rb.Workers[i].ID || ra.Workers[i].Score != rb.Workers[i].Score {
			t.Fatalf("rank %d differs: %+v vs %+v", i+1, ra.Workers[i], rb.Workers[i])
		}
	}
	// Different seeds produce different rankings.
	c := New(Config{Seed: 43})
	rc := c.RunQuery("Home Cleaning", "San Francisco, CA")
	same := true
	for i := range ra.Workers {
		if i >= len(rc.Workers) || ra.Workers[i].ID != rc.Workers[i].ID {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical ranking")
	}
}

func TestRunQueryPageProperties(t *testing.T) {
	m := New(Config{Seed: 5})
	for _, o := range m.Offers()[:200] {
		r := m.RunQuery(o.Job, o.City)
		if len(r.Workers) == 0 {
			t.Fatalf("empty page for %+v", o)
		}
		if len(r.Workers) > DefaultPageSize {
			t.Fatalf("page exceeds cap: %d", len(r.Workers))
		}
		prev := math.Inf(1)
		for i, w := range r.Workers {
			if w.Rank != i+1 {
				t.Fatalf("rank %d at position %d", w.Rank, i)
			}
			if w.Score > prev {
				t.Fatalf("scores not descending at rank %d", w.Rank)
			}
			prev = w.Score
			if w.Score < 0 || w.Score > 1 {
				t.Fatalf("score %v out of [0,1]", w.Score)
			}
		}
	}
}

func TestFairModelControl(t *testing.T) {
	// With the null bias model, group unfairness must sit near the
	// sampling-noise floor and far below the biased model's top values.
	fair := New(Config{Seed: 7, Bias: FairModel()})
	biased := New(Config{Seed: 7})
	ev := &core.MarketplaceEvaluator{Schema: core.DefaultSchema(), Measure: core.MeasureEMD}
	af := core.NewGroup(core.Predicate{Attr: "gender", Value: "Female"}, core.Predicate{Attr: "ethnicity", Value: "Asian"})

	avg := func(m *Marketplace) float64 {
		var sum float64
		var n int
		for _, o := range m.Offers()[:300] {
			if v, ok := ev.Unfairness(m.RunQuery(o.Job, o.City), af); ok {
				sum += v
				n++
			}
		}
		return sum / float64(n)
	}
	fairAvg, biasedAvg := avg(fair), avg(biased)
	if fairAvg >= biasedAvg {
		t.Fatalf("fair model (%v) not fairer than biased model (%v)", fairAvg, biasedAvg)
	}
	if biasedAvg < fairAvg*1.3 {
		t.Fatalf("bias signal too weak: fair %v vs biased %v", fairAvg, biasedAvg)
	}
}

func TestBiasModelHitMixture(t *testing.T) {
	m := DefaultBiasModel()
	city, _ := CityByName("Birmingham, UK")
	af := m.Groups[GroupKey(Female, Asian)]
	// u below DeepProb takes the deep depth.
	if got := m.Hit(af.DeepProb/2, Female, Asian, city); got != af.DeepDepth {
		t.Fatalf("deep hit = %v, want %v", got, af.DeepDepth)
	}
	// u in the shallow band takes the shallow depth.
	if got := m.Hit(af.DeepProb+af.ShallowProb/2, Female, Asian, city); got != af.ShallowDepth {
		t.Fatalf("shallow hit = %v, want %v", got, af.ShallowDepth)
	}
	// u above both bands is untouched.
	if got := m.Hit(0.999, Female, Asian, city); got != 0 {
		t.Fatalf("clean hit = %v, want 0", got)
	}
}

func TestFemaleFavoredCityRelievesWomen(t *testing.T) {
	m := DefaultBiasModel()
	ff, _ := CityByName("Chicago, IL")
	if !ff.FemaleFavored {
		t.Fatal("Chicago should be FemaleFavored")
	}
	normal, _ := CityByName("Detroit, MI")
	// In an FF city a woman's expected penalty is below a comparable
	// man's, and below her own penalty in a normal city.
	wFF := m.ExpectedPenalty(Female, Asian, ff)
	mFF := m.ExpectedPenalty(Male, Asian, ff)
	wNormal := m.ExpectedPenalty(Female, Asian, normal)
	if wFF >= mFF {
		t.Fatalf("FF city: female penalty %v !< male %v", wFF, mFF)
	}
	if wFF >= wNormal {
		t.Fatalf("FF city female penalty %v !< normal-city %v", wFF, wNormal)
	}
}

func TestBiasModelPanicsOnUnknownGroup(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultBiasModel().Hit(0.5, "Robot", Asian, Cities()[0])
}

func TestServesJobRule(t *testing.T) {
	handyman, _ := CategoryByName("Handyman")
	delivery, _ := CategoryByName("Delivery")
	ff, _ := CityByName("Chicago, IL")
	normal, _ := CityByName("Detroit, MI")
	man := &Tasker{Gender: Male}
	woman := &Tasker{Gender: Female, CatMemberIdx: map[string]int{}}

	// Men serve every job everywhere.
	for j := 0; j < 12; j++ {
		if !servesJob(man, handyman, j, normal) {
			t.Fatalf("man excluded from handyman job %d", j)
		}
	}
	// Women skip every third job of male-skewed categories in normal
	// cities but serve everything in FF cities and in other categories.
	for j := 0; j < 12; j++ {
		want := j%3 != 0
		if got := servesJob(woman, handyman, j, normal); got != want {
			t.Fatalf("woman handyman job %d = %v, want %v", j, got, want)
		}
		if !servesJob(woman, handyman, j, ff) {
			t.Fatalf("woman excluded from FF handyman job %d", j)
		}
		if !servesJob(woman, delivery, j, normal) {
			t.Fatalf("woman excluded from delivery job %d", j)
		}
	}
}

func TestFemaleAbsentPagesExistOutsideFFCities(t *testing.T) {
	m := New(Config{Seed: 7})
	absentByCity := map[core.Location]int{}
	for _, o := range m.Offers() {
		r := m.RunQuery(o.Job, o.City)
		females := 0
		for _, w := range r.Workers {
			if w.Attrs["gender"] == Female {
				females++
			}
		}
		if females == 0 {
			absentByCity[o.City]++
		}
	}
	if len(absentByCity) == 0 {
		t.Fatal("no female-absent pages anywhere; Table 12 mechanism broken")
	}
	for _, c := range Cities() {
		if c.FemaleFavored && absentByCity[c.Name] > 0 {
			t.Errorf("FF city %s has %d female-absent pages", c.Name, absentByCity[c.Name])
		}
		if !c.FemaleFavored && absentByCity[c.Name] == 0 {
			t.Errorf("normal city %s has no female-absent pages", c.Name)
		}
	}
}

func TestScorePanicsOnUnknownInputs(t *testing.T) {
	m := New(Config{Seed: 1})
	tk := m.Taskers[0]
	for name, f := range map[string]func(){
		"unknown city": func() { m.Score(tk, "Handyman", "Gotham") },
		"unknown job":  func() { m.Score(tk, "Rocket Surgery", tk.City) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTaskerAccessors(t *testing.T) {
	m := New(Config{Seed: 1})
	tk := m.Taskers[0]
	if got, ok := m.TaskerByID(tk.ID); !ok || got != tk {
		t.Fatal("TaskerByID failed")
	}
	if _, ok := m.TaskerByID("nope"); ok {
		t.Fatal("unknown tasker resolved")
	}
	attrs := tk.Attrs()
	if attrs["gender"] != tk.Gender || attrs["ethnicity"] != tk.Ethnicity {
		t.Fatalf("Attrs = %v", attrs)
	}
	if len(tk.Categories) != taskerCategories {
		t.Fatalf("categories = %d", len(tk.Categories))
	}
	if !tk.ServesCategory(tk.Categories[0]) || tk.ServesCategory("Nonsense") {
		t.Fatal("ServesCategory misbehaves")
	}
	if tk.Rating < 1 || tk.Rating > 5 {
		t.Fatalf("rating = %v", tk.Rating)
	}
	if tk.Quality < 0 || tk.Quality > 1 {
		t.Fatalf("quality = %v", tk.Quality)
	}
}

func TestCrawlAllCoversOffers(t *testing.T) {
	m := New(Config{Seed: 3})
	crawl := m.CrawlAll()
	if len(crawl) != PaperQueryCount {
		t.Fatalf("crawl = %d rankings, want %d", len(crawl), PaperQueryCount)
	}
}

func TestGroupBiasExpected(t *testing.T) {
	gb := GroupBias{DeepProb: 0.5, DeepDepth: 0.4, ShallowProb: 0.2, ShallowDepth: 0.1}
	if got := gb.Expected(); math.Abs(got-0.22) > 1e-12 {
		t.Fatalf("Expected = %v, want 0.22", got)
	}
}
