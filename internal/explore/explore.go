// Package explore implements the iterative exploration workflow the
// paper's conclusion sketches ("Our framework can be used to generate
// hypotheses and verify them across sites. That is what we did from
// TaskRabbit to Google job search... one could use it in iterative
// scenarios where the purpose is to explore and compare fairness.").
//
// An exploration step takes a *source* platform, derives hypotheses from
// its fairness-quantification answers (who is treated worst, which query
// families and locations are least fair), and verifies each hypothesis on
// a *target* platform, reporting which findings transfer. Subjects carry
// across platforms by name: demographic groups share the schema, locations
// match by name, and query families are matched through caller-provided
// name → query-set maps (e.g. the "yard work" marketplace category to the
// "yard work" Google search formulations).
package explore

import (
	"fmt"
	"sort"

	"fairjob/internal/core"
	"fairjob/internal/significance"
	"fairjob/internal/stats"
)

// Kind classifies a hypothesis.
type Kind int

// Hypothesis kinds.
const (
	// MostUnfairGroup: Subject is the group the source treats worst.
	MostUnfairGroup Kind = iota
	// LeastUnfairGroup: Subject is the group the source treats best.
	LeastUnfairGroup
	// UnfairestLocation / FairestLocation: Subject is a location name.
	UnfairestLocation
	FairestLocation
	// UnfairestQuerySet / FairestQuerySet: Subject is a query-family
	// name resolvable on both platforms.
	UnfairestQuerySet
	FairestQuerySet
	// GroupOrder: Subject is treated less fairly than Other, with the
	// difference statistically significant on the source.
	GroupOrder
)

func (k Kind) String() string {
	switch k {
	case MostUnfairGroup:
		return "most-unfair-group"
	case LeastUnfairGroup:
		return "least-unfair-group"
	case UnfairestLocation:
		return "unfairest-location"
	case FairestLocation:
		return "fairest-location"
	case UnfairestQuerySet:
		return "unfairest-queryset"
	case FairestQuerySet:
		return "fairest-queryset"
	case GroupOrder:
		return "group-order"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Hypothesis is one transferable finding.
type Hypothesis struct {
	Kind    Kind
	Subject string
	// Other is the comparison partner for GroupOrder hypotheses.
	Other string
	// Source names the platform the hypothesis was generated on;
	// SourceValue is the supporting aggregate there.
	Source      string
	SourceValue float64
}

func (h Hypothesis) String() string {
	if h.Kind == GroupOrder {
		return fmt.Sprintf("[%s] %s less fairly treated than %s (from %s)", h.Kind, h.Subject, h.Other, h.Source)
	}
	return fmt.Sprintf("[%s] %s (from %s, %.3f)", h.Kind, h.Subject, h.Source, h.SourceValue)
}

// Platform is one site's evaluated unfairness table plus the query-family
// naming shared across platforms.
type Platform struct {
	Name  string
	Table *core.Table
	// QuerySets maps a cross-platform family name (e.g. "yard work") to
	// the platform's queries in that family (a marketplace category's
	// jobs, a Google base's formulations).
	QuerySets map[string][]core.Query
}

// Options tunes hypothesis generation.
type Options struct {
	// TopLocations is how many locations from each end become
	// hypotheses (default 1).
	TopLocations int
	// OrderPairs limits how many significant group-order hypotheses are
	// generated (default 3). Pairs are tested most-extreme first.
	OrderPairs int
	// Resamples for the significance tests (0 = significance.DefaultResamples).
	Resamples int
	// Alpha is the significance level for GroupOrder hypotheses
	// (default 0.05).
	Alpha float64
	// Seed drives the resampling RNG.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.TopLocations == 0 {
		o.TopLocations = 1
	}
	if o.OrderPairs == 0 {
		o.OrderPairs = 3
	}
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	return o
}

type ranked struct {
	name string
	key  string
	v    float64
}

func rankGroups(tbl *core.Table) []ranked {
	qs, ls := tbl.Queries(), tbl.Locations()
	var out []ranked
	for _, g := range tbl.Groups() {
		if v, ok := tbl.AggregateGroup(g, qs, ls); ok {
			out = append(out, ranked{g.Name(), g.Key(), v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].v != out[j].v {
			return out[i].v > out[j].v
		}
		return out[i].name < out[j].name
	})
	return out
}

func rankLocations(tbl *core.Table) []ranked {
	gs, qs := tbl.Groups(), tbl.Queries()
	var out []ranked
	for _, l := range tbl.Locations() {
		if v, ok := tbl.AggregateLocation(l, gs, qs); ok {
			out = append(out, ranked{string(l), string(l), v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].v != out[j].v {
			return out[i].v > out[j].v
		}
		return out[i].name < out[j].name
	})
	return out
}

func rankQuerySets(p Platform) []ranked {
	gs, ls := p.Table.Groups(), p.Table.Locations()
	var out []ranked
	for name, qs := range p.QuerySets {
		var sum float64
		var n int
		for _, q := range qs {
			for _, g := range gs {
				for _, l := range ls {
					if v, ok := p.Table.Get(g, q, l); ok {
						sum += v
						n++
					}
				}
			}
		}
		if n > 0 {
			out = append(out, ranked{name, name, sum / float64(n)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].v != out[j].v {
			return out[i].v > out[j].v
		}
		return out[i].name < out[j].name
	})
	return out
}

// Generate derives hypotheses from the source platform: the most and
// least fairly treated groups, the extreme locations and query families,
// and up to OrderPairs statistically significant group orderings.
func Generate(src Platform, opts Options) []Hypothesis {
	opts = opts.withDefaults()
	var out []Hypothesis

	groups := rankGroups(src.Table)
	if len(groups) > 0 {
		out = append(out,
			Hypothesis{Kind: MostUnfairGroup, Subject: groups[0].name, Source: src.Name, SourceValue: groups[0].v},
			Hypothesis{Kind: LeastUnfairGroup, Subject: groups[len(groups)-1].name, Source: src.Name, SourceValue: groups[len(groups)-1].v},
		)
	}

	locs := rankLocations(src.Table)
	for i := 0; i < opts.TopLocations && i < len(locs); i++ {
		out = append(out, Hypothesis{Kind: UnfairestLocation, Subject: locs[i].name, Source: src.Name, SourceValue: locs[i].v})
		j := len(locs) - 1 - i
		if j > i {
			out = append(out, Hypothesis{Kind: FairestLocation, Subject: locs[j].name, Source: src.Name, SourceValue: locs[j].v})
		}
	}

	sets := rankQuerySets(src)
	if len(sets) > 0 {
		out = append(out,
			Hypothesis{Kind: UnfairestQuerySet, Subject: sets[0].name, Source: src.Name, SourceValue: sets[0].v},
			Hypothesis{Kind: FairestQuerySet, Subject: sets[len(sets)-1].name, Source: src.Name, SourceValue: sets[len(sets)-1].v},
		)
	}

	// Group-order hypotheses: extreme pairs first, kept only when the
	// paired difference is significant on the source.
	rng := stats.NewRNG(opts.Seed ^ 0xe7e7e7)
	added := 0
	for d := 0; d < len(groups)-1 && added < opts.OrderPairs; d++ {
		hi, lo := groups[d], groups[len(groups)-1-d]
		if hi.key == lo.key {
			break
		}
		res, err := significance.Groups(rng, src.Table, hi.key, lo.key, opts.Resamples)
		if err != nil || !res.Significant(opts.Alpha) || res.MeanDiff <= 0 {
			continue
		}
		out = append(out, Hypothesis{
			Kind: GroupOrder, Subject: hi.name, Other: lo.name,
			Source: src.Name, SourceValue: res.MeanDiff,
		})
		added++
	}
	return out
}

// Verdict is the outcome of verifying one hypothesis on a target
// platform.
type Verdict struct {
	Hypothesis
	// Tested is false when the subject does not exist on the target
	// (e.g. a city the other platform has no data for).
	Tested bool
	// Holds reports whether the finding transferred.
	Holds bool
	// TargetValue is the supporting aggregate (or mean difference) on
	// the target.
	TargetValue float64
	// Detail is a human-readable explanation.
	Detail string
}

// verifyRank checks that subject sits in the expected third of a ranking.
func verifyRank(rk []ranked, subject string, unfairEnd bool) (Verdict, bool) {
	pos := -1
	var val float64
	for i, r := range rk {
		if r.name == subject {
			pos, val = i, r.v
			break
		}
	}
	if pos < 0 {
		return Verdict{}, false
	}
	third := (len(rk) + 2) / 3
	var holds bool
	var detail string
	if unfairEnd {
		holds = pos < third
		detail = fmt.Sprintf("rank %d of %d from the unfair end", pos+1, len(rk))
	} else {
		holds = pos >= len(rk)-third
		detail = fmt.Sprintf("rank %d of %d from the unfair end", pos+1, len(rk))
	}
	return Verdict{Tested: true, Holds: holds, TargetValue: val, Detail: detail}, true
}

// Verify tests one hypothesis against the target platform. A hypothesis
// whose subject is absent from the target yields Tested == false rather
// than an error: cross-platform designs rarely share every location.
func Verify(h Hypothesis, target Platform, opts Options) Verdict {
	opts = opts.withDefaults()
	out := Verdict{Hypothesis: h}
	switch h.Kind {
	case MostUnfairGroup, LeastUnfairGroup:
		v, ok := verifyRank(rankGroups(target.Table), h.Subject, h.Kind == MostUnfairGroup)
		if !ok {
			out.Detail = "group absent on target"
			return out
		}
		v.Hypothesis = h
		return v
	case UnfairestLocation, FairestLocation:
		v, ok := verifyRank(rankLocations(target.Table), h.Subject, h.Kind == UnfairestLocation)
		if !ok {
			out.Detail = "location absent on target"
			return out
		}
		v.Hypothesis = h
		return v
	case UnfairestQuerySet, FairestQuerySet:
		v, ok := verifyRank(rankQuerySets(target), h.Subject, h.Kind == UnfairestQuerySet)
		if !ok {
			out.Detail = "query family absent on target"
			return out
		}
		v.Hypothesis = h
		return v
	case GroupOrder:
		g1, ok1 := findGroupKey(target.Table, h.Subject)
		g2, ok2 := findGroupKey(target.Table, h.Other)
		if !ok1 || !ok2 {
			out.Detail = "group absent on target"
			return out
		}
		rng := stats.NewRNG(opts.Seed ^ 0x5eed)
		res, err := significance.Groups(rng, target.Table, g1, g2, opts.Resamples)
		if err != nil {
			out.Detail = err.Error()
			return out
		}
		out.Tested = true
		out.TargetValue = res.MeanDiff
		out.Holds = res.MeanDiff > 0 && res.Significant(opts.Alpha)
		out.Detail = res.String()
		return out
	default:
		out.Detail = fmt.Sprintf("unknown hypothesis kind %v", h.Kind)
		return out
	}
}

func findGroupKey(tbl *core.Table, name string) (string, bool) {
	for _, g := range tbl.Groups() {
		if g.Name() == name {
			return g.Key(), true
		}
	}
	return "", false
}

// Transfer runs the full exploration step the paper describes: generate
// hypotheses on src, verify each on target, and return the verdicts in
// generation order.
func Transfer(src, target Platform, opts Options) []Verdict {
	hs := Generate(src, opts)
	out := make([]Verdict, len(hs))
	for i, h := range hs {
		out[i] = Verify(h, target, opts)
	}
	return out
}
