package explore

import (
	"testing"

	"fairjob/internal/core"
	"fairjob/internal/stats"
)

// buildPlatform makes a synthetic platform whose group/location/query-set
// orderings are controlled by simple offsets, shared noise keyed on seed.
func buildPlatform(name string, seed uint64, groupBias map[string]float64,
	locBias map[core.Location]float64, setBias map[string]float64) Platform {
	rng := stats.NewRNG(seed)
	tbl := core.NewTable()
	sets := map[string][]core.Query{}
	for setName := range setBias {
		sets[setName] = []core.Query{core.Query(setName + "-q1"), core.Query(setName + "-q2")}
	}
	for gName, gb := range groupBias {
		g := core.NewGroup(core.Predicate{Attr: "g", Value: gName})
		for setName, sb := range setBias {
			for _, q := range sets[setName] {
				for loc, lb := range locBias {
					v := 0.2 + gb + sb + lb + 0.02*rng.NormFloat64()
					tbl.Set(g, q, loc, stats.Clamp(v, 0, 1))
				}
			}
		}
	}
	return Platform{Name: name, Table: tbl, QuerySets: sets}
}

func agreeingPlatforms() (Platform, Platform) {
	groups := map[string]float64{"alpha": 0.25, "beta": 0.10, "gamma": 0.0}
	locs := map[core.Location]float64{"cityA": 0.15, "cityB": 0.05, "cityC": 0.0}
	sets := map[string]float64{"hardwork": 0.12, "easywork": 0.0}
	src := buildPlatform("source", 1, groups, locs, sets)
	dst := buildPlatform("target", 2, groups, locs, sets)
	return src, dst
}

func TestGenerateProducesExpectedHypotheses(t *testing.T) {
	src, _ := agreeingPlatforms()
	hs := Generate(src, Options{Seed: 3, Resamples: 199})
	kinds := map[Kind][]Hypothesis{}
	for _, h := range hs {
		kinds[h.Kind] = append(kinds[h.Kind], h)
		if h.Source != "source" {
			t.Errorf("hypothesis source = %q", h.Source)
		}
	}
	if len(kinds[MostUnfairGroup]) != 1 || kinds[MostUnfairGroup][0].Subject != "alpha" {
		t.Errorf("most unfair group = %+v", kinds[MostUnfairGroup])
	}
	if len(kinds[LeastUnfairGroup]) != 1 || kinds[LeastUnfairGroup][0].Subject != "gamma" {
		t.Errorf("least unfair group = %+v", kinds[LeastUnfairGroup])
	}
	if len(kinds[UnfairestLocation]) != 1 || kinds[UnfairestLocation][0].Subject != "cityA" {
		t.Errorf("unfairest location = %+v", kinds[UnfairestLocation])
	}
	if len(kinds[FairestLocation]) != 1 || kinds[FairestLocation][0].Subject != "cityC" {
		t.Errorf("fairest location = %+v", kinds[FairestLocation])
	}
	if len(kinds[UnfairestQuerySet]) != 1 || kinds[UnfairestQuerySet][0].Subject != "hardwork" {
		t.Errorf("unfairest set = %+v", kinds[UnfairestQuerySet])
	}
	if len(kinds[FairestQuerySet]) != 1 || kinds[FairestQuerySet][0].Subject != "easywork" {
		t.Errorf("fairest set = %+v", kinds[FairestQuerySet])
	}
	// alpha vs gamma is a large, consistent difference -> at least one
	// order hypothesis.
	if len(kinds[GroupOrder]) == 0 {
		t.Error("no group-order hypotheses generated")
	}
}

func TestTransferConfirmsOnAgreeingTarget(t *testing.T) {
	src, dst := agreeingPlatforms()
	verdicts := Transfer(src, dst, Options{Seed: 5, Resamples: 199})
	if len(verdicts) == 0 {
		t.Fatal("no verdicts")
	}
	for _, v := range verdicts {
		if !v.Tested {
			t.Errorf("%s: not tested (%s)", v.Hypothesis, v.Detail)
			continue
		}
		if !v.Holds {
			t.Errorf("%s should transfer to an agreeing platform: %s", v.Hypothesis, v.Detail)
		}
	}
}

func TestTransferRefutesOnInvertedTarget(t *testing.T) {
	src, _ := agreeingPlatforms()
	// Target with the group ordering inverted.
	inverted := buildPlatform("inverted", 9,
		map[string]float64{"alpha": 0.0, "beta": 0.10, "gamma": 0.25},
		map[core.Location]float64{"cityA": 0.15, "cityB": 0.05, "cityC": 0.0},
		map[string]float64{"hardwork": 0.12, "easywork": 0.0})
	verdicts := Transfer(src, inverted, Options{Seed: 11, Resamples: 199})
	refuted := 0
	for _, v := range verdicts {
		if v.Tested && !v.Holds &&
			(v.Kind == MostUnfairGroup || v.Kind == LeastUnfairGroup || v.Kind == GroupOrder) {
			refuted++
		}
	}
	if refuted == 0 {
		t.Fatal("inverted group ordering not refuted")
	}
}

func TestVerifyAbsentSubjects(t *testing.T) {
	src, _ := agreeingPlatforms()
	smaller := buildPlatform("small", 13,
		map[string]float64{"alpha": 0.2, "beta": 0.0},
		map[core.Location]float64{"cityX": 0.0},
		map[string]float64{"otherwork": 0.0})
	for _, h := range []Hypothesis{
		{Kind: UnfairestLocation, Subject: "cityA", Source: "source"},
		{Kind: UnfairestQuerySet, Subject: "hardwork", Source: "source"},
		{Kind: MostUnfairGroup, Subject: "gamma", Source: "source"},
		{Kind: GroupOrder, Subject: "alpha", Other: "gamma", Source: "source"},
	} {
		v := Verify(h, smaller, Options{Seed: 1, Resamples: 99})
		if v.Tested {
			t.Errorf("%s should be untestable on the small platform", h)
		}
	}
	_ = src
}

func TestKindAndHypothesisStrings(t *testing.T) {
	for k := MostUnfairGroup; k <= GroupOrder; k++ {
		if k.String() == "" {
			t.Errorf("kind %d renders empty", int(k))
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
	h := Hypothesis{Kind: GroupOrder, Subject: "a", Other: "b", Source: "s"}
	if h.String() == "" {
		t.Error("empty hypothesis string")
	}
	h2 := Hypothesis{Kind: MostUnfairGroup, Subject: "a", Source: "s", SourceValue: 0.5}
	if h2.String() == "" {
		t.Error("empty hypothesis string")
	}
}

func TestVerifyUnknownKind(t *testing.T) {
	_, dst := agreeingPlatforms()
	v := Verify(Hypothesis{Kind: Kind(42), Subject: "x"}, dst, Options{})
	if v.Tested {
		t.Fatal("unknown kind should not be tested")
	}
}
