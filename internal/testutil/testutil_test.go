package testutil

import (
	"math"
	"strings"
	"testing"
)

func TestNear(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		a, b float64
		tol  float64
		want bool
	}{
		{"equal", 0.5, 0.5, 1e-12, true},
		{"one-ulp", 1.0, math.Nextafter(1.0, 2.0), 1e-12, true},
		{"relative-large", 1e12, 1e12 * (1 + 1e-10), 1e-9, true},
		{"relative-large-fail", 1e12, 1e12 * 1.01, 1e-9, false},
		{"absolute-near-zero", 0, 1e-10, 1e-9, true},
		{"absolute-near-zero-fail", 0, 1e-6, 1e-9, false},
		{"percent-change-fails", 0.0731, 0.0593, 1e-9, false},
		{"both-nan", nan, nan, 1e-9, true},
		{"one-nan", nan, 0.5, 1e-9, false},
		{"same-inf", inf, inf, 1e-9, true},
		{"opposite-inf", inf, -inf, 1e-9, false},
		{"inf-vs-finite", inf, 1e300, 1e-9, false},
	}
	for _, c := range cases {
		if got := Near(c.a, c.b, c.tol); got != c.want {
			t.Errorf("%s: Near(%v, %v, %g) = %v, want %v", c.name, c.a, c.b, c.tol, got, c.want)
		}
		if got := Near(c.b, c.a, c.tol); got != c.want {
			t.Errorf("%s: Near is not symmetric: Near(%v, %v, %g) = %v, want %v", c.name, c.b, c.a, c.tol, got, c.want)
		}
	}
}

// fakeTB records Fatalf calls instead of ending the test, so the
// asserters' failure behavior is itself testable.
type fakeTB struct {
	testing.TB
	failed bool
	msg    string
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Fatalf(format string, args ...any) {
	f.failed = true
	f.msg = strings.TrimSpace(format)
	_ = args
}

func TestApprox(t *testing.T) {
	ok := &fakeTB{}
	Approx(ok, "v", 0.5000000000001, 0.5, 1e-9)
	if ok.failed {
		t.Fatalf("Approx failed a within-tolerance pair: %s", ok.msg)
	}
	bad := &fakeTB{}
	Approx(bad, "v", 0.52, 0.5, 1e-9)
	if !bad.failed {
		t.Fatal("Approx accepted a 4% deviation at 1e-9 relative tolerance")
	}
}

func TestApproxSlice(t *testing.T) {
	ok := &fakeTB{}
	ApproxSlice(ok, "vs", []float64{1, 2, 3}, []float64{1, 2, 3 + 1e-12}, 1e-9)
	if ok.failed {
		t.Fatalf("ApproxSlice failed a within-tolerance slice: %s", ok.msg)
	}
	length := &fakeTB{}
	ApproxSlice(length, "vs", []float64{1}, []float64{1, 2}, 1e-9)
	if !length.failed {
		t.Fatal("ApproxSlice accepted mismatched lengths")
	}
	elem := &fakeTB{}
	ApproxSlice(elem, "vs", []float64{1, 2.1}, []float64{1, 2}, 1e-9)
	if !elem.failed {
		t.Fatal("ApproxSlice accepted an out-of-tolerance element")
	}
}
