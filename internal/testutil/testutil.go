// Package testutil holds the repository's shared test helpers. Its core
// is the relative-tolerance float comparison family: golden tests across
// packages assert computed unfairness values against pinned constants,
// and exact float equality is the wrong tool for that — a reordering of
// a parallel reduction or a refactored formula can move a value by an
// ULP without being wrong. The helpers compare under a relative
// tolerance with an absolute fallback near zero, in two styles matching
// the repo's two call-site shapes: a bool predicate (Near) for table
// tests that compose their own failure messages, and testing.TB-based
// asserters (Approx, ApproxSlice) that fail with a uniform message.
package testutil

import (
	"math"
	"testing"
)

// DefaultTol is the relative tolerance golden tests use when they have
// no reason to pick another: loose enough to survive evaluation-order
// changes, tight enough that a real formula change (which moves values
// by percents, not ULPs) still fails.
const DefaultTol = 1e-9

// Near reports whether a and b are within tol of each other, where tol
// is relative to the larger magnitude and absolute near zero:
//
//	|a−b| ≤ tol · max(|a|, |b|, 1)
//
// Two NaNs count as near (a golden NaN stays assertable); a single NaN
// does not. Matching infinities are near, opposite or mismatched ones
// are not.
func Near(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}

// Approx fails tb when got is not Near want under the relative
// tolerance tol. name labels the quantity in the failure message.
func Approx(tb testing.TB, name string, got, want, tol float64) {
	tb.Helper()
	if !Near(got, want, tol) {
		tb.Fatalf("%s = %v, want %v (relative tolerance %g, diff %g)",
			name, got, want, tol, math.Abs(got-want))
	}
}

// ApproxSlice fails tb when got and want differ in length or any pair
// of elements is not Near under tol.
func ApproxSlice(tb testing.TB, name string, got, want []float64, tol float64) {
	tb.Helper()
	if len(got) != len(want) {
		tb.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if !Near(got[i], want[i], tol) {
			tb.Fatalf("%s[%d] = %v, want %v (relative tolerance %g, diff %g)",
				name, i, got[i], want[i], tol, math.Abs(got[i]-want[i]))
		}
	}
}
