package labeling

import (
	"fmt"
	"testing"

	"fairjob/internal/core"
)

func subjects(n int) []Subject {
	genders := []string{"Male", "Female"}
	eths := []string{"Asian", "Black", "White"}
	out := make([]Subject, n)
	for i := range out {
		out[i] = Subject{
			ID:        fmt.Sprintf("w%04d", i),
			PhotoID:   fmt.Sprintf("p%04d", i),
			Gender:    genders[i%2],
			Ethnicity: eths[i%3],
		}
	}
	return out
}

func TestPerfectContributorsAreAlwaysRight(t *testing.T) {
	l := New(Config{Seed: 1, ErrorRate: 0, AbstainRate: 0})
	subs := subjects(200)
	labels := l.LabelAll(subs)
	if acc := Accuracy(subs, labels); acc != 1 {
		t.Fatalf("accuracy = %v, want 1", acc)
	}
}

func TestDefaultConfigAccuracyHigh(t *testing.T) {
	l := New(DefaultConfig(7))
	subs := subjects(2000)
	labels := l.LabelAll(subs)
	acc := Accuracy(subs, labels)
	// With 4% error and 3% abstention per contributor, majority voting
	// should recover the truth for the overwhelming majority.
	if acc < 0.95 {
		t.Fatalf("accuracy = %v, want >= 0.95", acc)
	}
	if acc == 1 {
		t.Fatal("accuracy exactly 1: noise not exercised")
	}
}

func TestLabelingDeterminism(t *testing.T) {
	subs := subjects(100)
	a := New(DefaultConfig(42)).LabelAll(subs)
	b := New(DefaultConfig(42)).LabelAll(subs)
	for id, la := range a {
		lb := b[id]
		if la["gender"] != lb["gender"] || la["ethnicity"] != lb["ethnicity"] {
			t.Fatalf("labels differ for %s: %v vs %v", id, la, lb)
		}
	}
}

func TestUnknownAppearsUnderHeavyNoise(t *testing.T) {
	l := New(Config{Seed: 3, ErrorRate: 0.4, AbstainRate: 0.3})
	subs := subjects(500)
	labels := l.LabelAll(subs)
	unknown := 0
	for _, lab := range labels {
		if lab["gender"] == Unknown || lab["ethnicity"] == Unknown {
			unknown++
		}
	}
	if unknown == 0 {
		t.Fatal("heavy noise produced no Unknown labels")
	}
}

func TestUnknownMatchesNoGroup(t *testing.T) {
	attrs := core.Assignment{"gender": Unknown, "ethnicity": "Black"}
	for _, g := range core.DefaultSchema().Universe() {
		if _, ok := g.Label.ValueOf("gender"); ok && attrs.Matches(g.Label) {
			t.Fatalf("Unknown gender matched group %s", g.Name())
		}
	}
}

func TestMajorityNeedsStrictMajority(t *testing.T) {
	// With 2 contributors a single disagreement forces Unknown: strict
	// majority of 2 requires both votes to agree.
	l := New(Config{Seed: 5, Contributors: 2, ErrorRate: 0.5, AbstainRate: 0})
	subs := subjects(300)
	labels := l.LabelAll(subs)
	unknown := 0
	for _, lab := range labels {
		if lab["gender"] == Unknown {
			unknown++
		}
	}
	// P(disagree) = 2·0.5·0.5 = 0.5 for the binary gender attribute.
	if unknown < 50 {
		t.Fatalf("expected frequent Unknowns with split votes, got %d/300", unknown)
	}
}

func TestAccuracyEdgeCases(t *testing.T) {
	if got := Accuracy(nil, nil); got != 0 {
		t.Fatalf("empty accuracy = %v", got)
	}
}

func TestRelabelPreservesOriginal(t *testing.T) {
	orig := []*core.MarketplaceRanking{{
		Query:    "q",
		Location: "l",
		Workers: []core.RankedWorker{
			{ID: "w1", Attrs: core.Assignment{"gender": "Male", "ethnicity": "White"}, Rank: 1},
			{ID: "w2", Attrs: core.Assignment{"gender": "Female", "ethnicity": "Black"}, Rank: 2},
		},
	}}
	labels := map[string]core.Assignment{
		"w1": {"gender": "Female", "ethnicity": Unknown},
	}
	relabeled := Relabel(orig, labels)
	if relabeled[0].Workers[0].Attrs["gender"] != "Female" {
		t.Fatal("relabel did not apply")
	}
	if relabeled[0].Workers[1].Attrs["gender"] != "Female" {
		t.Fatal("worker without label should keep original attrs")
	}
	if orig[0].Workers[0].Attrs["gender"] != "Male" {
		t.Fatal("original mutated")
	}
	// Mutating the relabeled copy must not touch the label map or orig.
	relabeled[0].Workers[0].Attrs["gender"] = "X"
	if labels["w1"]["gender"] != "Female" {
		t.Fatal("relabel aliased the label map")
	}
}

func TestLabelSingleSubject(t *testing.T) {
	l := New(Config{Seed: 9, ErrorRate: 0, AbstainRate: 0})
	got := l.Label(Subject{ID: "x", PhotoID: "px", Gender: "Female", Ethnicity: "Asian"})
	if got["gender"] != "Female" || got["ethnicity"] != "Asian" {
		t.Fatalf("Label = %v", got)
	}
}
