// Package labeling simulates the crowdsourced demographic-labeling step of
// the paper's pipeline (§5.1.1): tasker demographics were not available on
// the platform, so each profile picture was labeled by three Amazon
// Mechanical Turk contributors choosing from pre-defined gender and
// ethnicity categories, with a majority vote deciding the final label.
//
// The simulation reproduces the pipeline position and its failure modes:
// contributors sometimes mislabel or abstain, and a photo without a
// majority gets the Unknown label, excluding the worker from every
// demographic group downstream — exactly what happens to unlabeled
// workers in the real pipeline.
package labeling

import (
	"fmt"
	"hash/fnv"

	"fairjob/internal/core"
	"fairjob/internal/stats"
)

// Unknown is the label recorded when the contributor majority vote fails.
// It is deliberately outside every schema domain, so workers labeled
// Unknown match no demographic group.
const Unknown = "Unknown"

// Subject is one profile to label: the ground truth is what the photo
// actually shows; the labeler output is what the F-Box will see.
type Subject struct {
	ID        string
	PhotoID   string
	Gender    string
	Ethnicity string
}

// Config parameterizes the simulated AMT labeling task.
type Config struct {
	// Seed makes labeling deterministic.
	Seed uint64
	// Contributors per photo; the paper used 3.
	Contributors int
	// ErrorRate is the chance a contributor picks a wrong value for an
	// attribute (uniformly among the other domain values).
	ErrorRate float64
	// AbstainRate is the chance a contributor cannot tell and abstains
	// for an attribute.
	AbstainRate float64
	// GenderDomain and EthnicityDomain are the pre-defined categories
	// contributors choose from; defaults match the paper's task.
	GenderDomain    []string
	EthnicityDomain []string
}

func (c Config) withDefaults() Config {
	if c.Contributors == 0 {
		c.Contributors = 3
	}
	if c.GenderDomain == nil {
		c.GenderDomain = []string{"Male", "Female"}
	}
	if c.EthnicityDomain == nil {
		c.EthnicityDomain = []string{"Asian", "Black", "White"}
	}
	return c
}

// DefaultConfig returns the labeling setup used by the experiment
// pipeline: 3 contributors, 4% per-attribute error, 3% abstention.
func DefaultConfig(seed uint64) Config {
	return Config{Seed: seed, Contributors: 3, ErrorRate: 0.04, AbstainRate: 0.03}
}

// Labeler runs the simulated labeling task.
type Labeler struct {
	cfg Config
}

// New builds a Labeler.
func New(cfg Config) *Labeler {
	return &Labeler{cfg: cfg.withDefaults()}
}

// vote returns contributor k's vote for one attribute of a photo, or ""
// for an abstention. Votes are deterministic in (seed, photo, contributor,
// attribute).
func (l *Labeler) vote(photoID, attr, truth string, domain []string, k int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d", l.cfg.Seed, photoID, attr, k)
	r := stats.NewRNG(h.Sum64())
	if r.Bernoulli(l.cfg.AbstainRate) {
		return ""
	}
	if r.Bernoulli(l.cfg.ErrorRate) {
		others := make([]string, 0, len(domain)-1)
		for _, v := range domain {
			if v != truth {
				others = append(others, v)
			}
		}
		if len(others) == 0 {
			return truth
		}
		return others[r.Intn(len(others))]
	}
	return truth
}

// majority tallies votes and returns the winner, or Unknown when no value
// reaches a strict majority of the contributor count.
func (l *Labeler) majority(photoID, attr, truth string, domain []string) string {
	counts := make(map[string]int, len(domain))
	for k := 0; k < l.cfg.Contributors; k++ {
		if v := l.vote(photoID, attr, truth, domain, k); v != "" {
			counts[v]++
		}
	}
	need := l.cfg.Contributors/2 + 1
	for _, v := range domain {
		if counts[v] >= need {
			return v
		}
	}
	return Unknown
}

// Label returns the observed demographic assignment for one subject.
func (l *Labeler) Label(s Subject) core.Assignment {
	return core.Assignment{
		"gender":    l.majority(s.PhotoID, "gender", s.Gender, l.cfg.GenderDomain),
		"ethnicity": l.majority(s.PhotoID, "ethnicity", s.Ethnicity, l.cfg.EthnicityDomain),
	}
}

// LabelAll labels every subject, returning observed assignments by
// subject ID.
func (l *Labeler) LabelAll(subjects []Subject) map[string]core.Assignment {
	out := make(map[string]core.Assignment, len(subjects))
	for _, s := range subjects {
		out[s.ID] = l.Label(s)
	}
	return out
}

// Accuracy reports the fraction of subjects whose observed label matches
// ground truth on both attributes — a quality metric for the simulated
// task, analogous to the inter-annotator checks run on real AMT batches.
func Accuracy(subjects []Subject, labels map[string]core.Assignment) float64 {
	if len(subjects) == 0 {
		return 0
	}
	correct := 0
	for _, s := range subjects {
		obs := labels[s.ID]
		if obs["gender"] == s.Gender && obs["ethnicity"] == s.Ethnicity {
			correct++
		}
	}
	return float64(correct) / float64(len(subjects))
}

// Relabel returns copies of the rankings with worker attributes replaced
// by observed labels. Workers without an entry in labels keep their
// original attributes. The originals are not modified — the ground-truth
// crawl stays available for validation.
func Relabel(rankings []*core.MarketplaceRanking, labels map[string]core.Assignment) []*core.MarketplaceRanking {
	out := make([]*core.MarketplaceRanking, len(rankings))
	for i, r := range rankings {
		nr := &core.MarketplaceRanking{Query: r.Query, Location: r.Location, Workers: make([]core.RankedWorker, len(r.Workers))}
		copy(nr.Workers, r.Workers)
		for j := range nr.Workers {
			if obs, ok := labels[nr.Workers[j].ID]; ok {
				nr.Workers[j].Attrs = obs.Clone()
			}
		}
		out[i] = nr
	}
	return out
}
