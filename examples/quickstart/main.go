// Quickstart: measure group unfairness in a small worker ranking, then ask
// a top-k fairness question — the framework's two building blocks in ~60
// lines.
package main

import (
	"fmt"
	"math"

	"fairjob/internal/core"
	"fairjob/internal/index"
	"fairjob/internal/topk"
)

func main() {
	schema := core.DefaultSchema()

	// A single result page: six workers ranked for one query at one
	// location. Attributes use the schema's protected attributes.
	page := &core.MarketplaceRanking{
		Query:    "home cleaning",
		Location: "Springfield",
		Workers: []core.RankedWorker{
			{ID: "w1", Rank: 1, Score: math.NaN(), Attrs: core.Assignment{"gender": "Male", "ethnicity": "White"}},
			{ID: "w2", Rank: 2, Score: math.NaN(), Attrs: core.Assignment{"gender": "Male", "ethnicity": "White"}},
			{ID: "w3", Rank: 3, Score: math.NaN(), Attrs: core.Assignment{"gender": "Female", "ethnicity": "Black"}},
			{ID: "w4", Rank: 4, Score: math.NaN(), Attrs: core.Assignment{"gender": "Male", "ethnicity": "Asian"}},
			{ID: "w5", Rank: 5, Score: math.NaN(), Attrs: core.Assignment{"gender": "Female", "ethnicity": "Asian"}},
			{ID: "w6", Rank: 6, Score: math.NaN(), Attrs: core.Assignment{"gender": "Female", "ethnicity": "White"}},
		},
	}

	// 1. Unfairness of one group on one page, under both marketplace
	// measures (§3.3 of the paper).
	af := core.NewGroup(
		core.Predicate{Attr: "gender", Value: "Female"},
		core.Predicate{Attr: "ethnicity", Value: "Asian"},
	)
	for _, m := range []core.MarketplaceMeasure{core.MeasureEMD, core.MeasureExposure} {
		ev := &core.MarketplaceEvaluator{Schema: schema, Measure: m}
		if d, ok := ev.Unfairness(page, af); ok {
			fmt.Printf("d<%s, %s, %s> (%v) = %.3f\n", af.Name(), page.Query, page.Location, m, d)
		}
	}

	// 2. Evaluate every group into an unfairness table, index it, and ask
	// a quantification question with the Threshold Algorithm (§4.2):
	// which 3 groups is this page least fair for?
	ev := &core.MarketplaceEvaluator{Schema: schema, Measure: core.MeasureExposure}
	table := ev.EvaluateAll([]*core.MarketplaceRanking{page}, nil)
	gi := index.BuildGroupIndex(table)
	top, err := topk.GroupFairness(gi, nil, nil, 3, topk.MostUnfair)
	if err != nil {
		panic(err)
	}
	fmt.Println("\n3 most unfairly treated groups on this page (exposure):")
	for i, r := range top {
		g, _ := table.GroupByKey(r.Key)
		fmt.Printf("  %d. %-14s %.3f\n", i+1, g.Name(), r.Value)
	}
}
