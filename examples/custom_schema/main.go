// Custom schema: the framework is generic over protected attributes
// (§3.1: "groups are obtained with any combination of protected
// attributes"). This example audits a ranking with a three-attribute
// schema — gender × ethnicity × age — which yields a 35-group universe,
// touching the subgroup-fairness territory of Kearns et al. that the
// paper's related work discusses.
package main

import (
	"fmt"
	"math"
	"sort"

	"fairjob/internal/core"
	"fairjob/internal/stats"
)

func main() {
	schema := core.NewSchema(map[core.Attribute][]string{
		"gender":    {"Male", "Female"},
		"ethnicity": {"Asian", "Black", "White"},
		"age":       {"Under40", "Over40"},
	})
	fmt.Printf("universe: %d groups over 3 protected attributes\n", len(schema.Universe()))

	// A synthetic 60-worker page where older Asian women sink to the
	// bottom: an intersectional pattern no single attribute explains.
	rng := stats.NewRNG(99)
	type w struct {
		attrs core.Assignment
		score float64
	}
	var workers []w
	genders := []string{"Male", "Female"}
	eths := []string{"Asian", "Black", "White"}
	ages := []string{"Under40", "Over40"}
	for i := 0; i < 60; i++ {
		attrs := core.Assignment{
			"gender":    genders[rng.Intn(2)],
			"ethnicity": eths[rng.Intn(3)],
			"age":       ages[rng.Intn(2)],
		}
		score := 0.5 + 0.1*rng.NormFloat64()
		if attrs["gender"] == "Female" && attrs["ethnicity"] == "Asian" && attrs["age"] == "Over40" {
			score -= 0.35 // the intersectional penalty
		}
		workers = append(workers, w{attrs, score})
	}
	sort.Slice(workers, func(i, j int) bool { return workers[i].score > workers[j].score })
	page := &core.MarketplaceRanking{Query: "audit", Location: "here"}
	for i, x := range workers {
		page.Workers = append(page.Workers, core.RankedWorker{
			ID: fmt.Sprintf("w%02d", i), Attrs: x.attrs, Rank: i + 1, Score: math.NaN(),
		})
	}

	// Rank every group in the 35-group universe by EMD unfairness. The
	// comparable-group structure localizes the harm: the intersectional
	// group tops the list while its one-attribute projections sit lower.
	ev := &core.MarketplaceEvaluator{Schema: schema, Measure: core.MeasureEMD}
	type row struct {
		name string
		d    float64
	}
	var rows []row
	for _, g := range schema.Universe() {
		if d, ok := ev.Unfairness(page, g); ok {
			rows = append(rows, row{g.Name(), d})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].d > rows[j].d })
	fmt.Println("\ntop 8 most unfairly treated groups (EMD):")
	for i := 0; i < 8 && i < len(rows); i++ {
		fmt.Printf("  %d. %-24s %.3f\n", i+1, rows[i].name, rows[i].d)
	}
	fmt.Println("\n(\"Over40 Asian Female\" should lead: the framework surfaces the")
	fmt.Println("intersectional group directly instead of diluting it into its")
	fmt.Println("single-attribute projections)")
}
