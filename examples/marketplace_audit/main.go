// Marketplace audit: run the paper's §5.2.1 fairness quantification on the
// synthetic TaskRabbit — who does the platform treat worst, which jobs and
// which cities are least fair — using the Threshold Algorithm over the
// three index families.
package main

import (
	"fmt"

	"fairjob/internal/core"
	"fairjob/internal/index"
	"fairjob/internal/marketplace"
	"fairjob/internal/topk"
)

func main() {
	fmt.Println("synthesizing marketplace and crawling 5,361 queries...")
	m := marketplace.New(marketplace.Config{Seed: 7})
	crawl := m.CrawlAll()

	ev := &core.MarketplaceEvaluator{Schema: core.DefaultSchema(), Measure: core.MeasureEMD}
	table := ev.EvaluateAll(crawl, nil)
	fmt.Println("evaluated:", table)

	// Group-fairness: the paper's "what are the 5 groups for which the
	// site is most unfair?" — Algorithm 1 over the I(q,l) indices.
	gi := index.BuildGroupIndex(table)
	groups, err := topk.GroupFairness(gi, nil, nil, 5, topk.MostUnfair)
	check(err)
	fmt.Println("\n5 most unfairly treated groups (EMD):")
	for i, r := range groups {
		g, _ := table.GroupByKey(r.Key)
		fmt.Printf("  %d. %-14s %.3f\n", i+1, g.Name(), r.Value)
	}

	// Query-fairness restricted to one category: which Handyman jobs are
	// least fair?
	handyman, _ := marketplace.CategoryByName("Handyman")
	qi := index.BuildQueryIndex(table)
	jobs, err := topk.QueryFairness(qi, nil, nil, 3, topk.MostUnfair)
	check(err)
	fmt.Println("\n3 most unfair jobs overall:")
	for i, r := range jobs {
		fmt.Printf("  %d. %-28s %.3f\n", i+1, r.Key, r.Value)
	}

	// Location-fairness scoped to Handyman jobs: where is it hardest to
	// be treated fairly as a handyman? (the paper's "at which locations
	// is it easiest to be hired as a house cleaner" question, inverted).
	li := index.BuildLocationIndex(table)
	worst, err := topk.LocationFairness(li, nil, marketplace.QueriesOf(handyman), 3, topk.MostUnfair)
	check(err)
	best, err := topk.LocationFairness(li, nil, marketplace.QueriesOf(handyman), 3, topk.LeastUnfair)
	check(err)
	fmt.Println("\nleast fair cities for Handyman jobs:")
	for i, r := range worst {
		fmt.Printf("  %d. %-28s %.3f\n", i+1, r.Key, r.Value)
	}
	fmt.Println("fairest cities for Handyman jobs:")
	for i, r := range best {
		fmt.Printf("  %d. %-28s %.3f\n", i+1, r.Key, r.Value)
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
