// Comparison: solve the paper's Problem 2 (§5.3) on the synthetic
// TaskRabbit — where does the male/female comparison reverse, and which
// jobs invert a city-vs-city trend?
package main

import (
	"fmt"

	"fairjob/internal/compare"
	"fairjob/internal/core"
	"fairjob/internal/marketplace"
)

func main() {
	fmt.Println("synthesizing marketplace and evaluating exposure unfairness...")
	m := marketplace.New(marketplace.Config{Seed: 7})
	crawl := m.CrawlAll()

	expo := &core.MarketplaceEvaluator{Schema: core.DefaultSchema(), Measure: core.MeasureExposure}
	expoTable := expo.EvaluateAll(crawl, nil)

	// Group-comparison (Table 12): males vs females broken down by
	// location — return the locations whose comparison differs from the
	// overall one.
	c := compare.NewDefinedOnly(expoTable)
	male := core.NewGroup(core.Predicate{Attr: "gender", Value: "Male"}).Key()
	female := core.NewGroup(core.Predicate{Attr: "gender", Value: "Female"}).Key()
	cmp, err := c.Groups(male, female, compare.ByLocation, compare.Scope{})
	check(err)
	fmt.Printf("\noverall: males %.4f, females %.4f — females are treated less fairly\n",
		cmp.Overall1, cmp.Overall2)
	fmt.Println("locations where the comparison differs (females treated at least as fairly):")
	for _, b := range cmp.Reversed {
		fmt.Printf("  %-30s males %.4f  females %.4f\n", b.B, b.V1, b.V2)
	}

	// Location-comparison (Table 15): SF Bay Area vs Chicago across the
	// General Cleaning jobs.
	emd := &core.MarketplaceEvaluator{Schema: core.DefaultSchema(), Measure: core.MeasureEMD}
	emdTable := emd.EvaluateAll(crawl, nil)
	gc, _ := marketplace.CategoryByName("General Cleaning")
	loc, err := compare.NewDefinedOnly(emdTable).Locations(
		"San Francisco Bay Area, CA", "Chicago, IL", compare.ByQuery,
		compare.Scope{Queries: marketplace.QueriesOf(gc)})
	check(err)
	fmt.Printf("\nSF Bay Area %.3f vs Chicago %.3f across General Cleaning — SF Bay is fairer overall\n",
		loc.Overall1, loc.Overall2)
	fmt.Println("jobs where the trend inverts:")
	for _, b := range loc.Reversed {
		fmt.Printf("  %-22s SF Bay %.3f  Chicago %.3f\n", b.B, b.V1, b.V2)
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
