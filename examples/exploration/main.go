// Exploration: the cross-platform workflow from the paper's conclusion —
// generate fairness hypotheses on TaskRabbit, then verify them on Google
// job search ("Our framework can be used to generate hypotheses and
// verify them across sites. That is what we did from TaskRabbit to Google
// job search.").
package main

import (
	"fmt"

	"fairjob/internal/core"
	"fairjob/internal/explore"
	"fairjob/internal/marketplace"
	"fairjob/internal/search"
)

func main() {
	fmt.Println("building both platforms (TaskRabbit crawl + Google study sweep)...")

	// Source platform: the marketplace under EMD. Query families are the
	// job categories, named by their Google base where one exists so the
	// hypothesis can transfer.
	m := marketplace.New(marketplace.Config{Seed: 7})
	emd := &core.MarketplaceEvaluator{Schema: core.DefaultSchema(), Measure: core.MeasureEMD}
	catToBase := map[string]string{
		"Yard Work":          "yard work",
		"General Cleaning":   "general cleaning",
		"Event Staffing":     "event staffing",
		"Moving":             "moving job",
		"Run Errands":        "run errand",
		"Furniture Assembly": "furniture assembly",
	}
	srcSets := map[string][]core.Query{}
	for _, cat := range marketplace.Categories() {
		if base, ok := catToBase[cat.Name]; ok {
			srcSets[base] = marketplace.QueriesOf(cat)
		}
	}
	src := explore.Platform{
		Name:      "TaskRabbit (EMD)",
		Table:     emd.EvaluateAll(m.CrawlAll(), nil),
		QuerySets: srcSets,
	}

	// Target platform: Google job search under Kendall Tau; query
	// families are the bases' search formulations.
	engine := search.New(search.Config{Seed: 11})
	kt := &core.SearchEvaluator{Schema: core.DefaultSchema(), Measure: core.MeasureKendallTau}
	dstSets := map[string][]core.Query{}
	for _, base := range search.Bases() {
		dstSets[base] = search.TermsOfBase(base)
	}
	dst := explore.Platform{
		Name:      "Google job search (Kendall Tau)",
		Table:     kt.EvaluateAll(engine.CrawlAll(), nil),
		QuerySets: dstSets,
	}

	opts := explore.Options{Seed: 17, TopLocations: 1, OrderPairs: 2, Resamples: 499}
	verdicts := explore.Transfer(src, dst, opts)

	fmt.Printf("\n%d hypotheses generated on %s, verified on %s:\n\n", len(verdicts), src.Name, dst.Name)
	confirmed, refuted, untestable := 0, 0, 0
	for _, v := range verdicts {
		status := "UNTESTABLE"
		switch {
		case v.Tested && v.Holds:
			status = "CONFIRMED"
			confirmed++
		case v.Tested:
			status = "REFUTED"
			refuted++
		default:
			untestable++
		}
		fmt.Printf("  [%-10s] %s\n               target: %s\n", status, v.Hypothesis, v.Detail)
	}
	fmt.Printf("\nsummary: %d confirmed, %d refuted, %d untestable on the target platform\n",
		confirmed, refuted, untestable)
	fmt.Println("\n(the paper's own transfer confirmed the yard-work and furniture-assembly")
	fmt.Println("query findings across sites while group-level findings differed — the two")
	fmt.Println("platforms rank different demographics worst, which this run reproduces)")
}
