// Search audit: run the paper's §5.2.2 quantification on the synthetic
// Google job search — whose personalized results diverge most, and at
// which locations — using per-user result lists and the Kendall Tau /
// Jaccard measures.
package main

import (
	"fmt"
	"sort"

	"fairjob/internal/core"
	"fairjob/internal/search"
)

func main() {
	fmt.Println("running the 11-study Google sweep (6 groups × 3 participants × 5 terms × 2 repeats)...")
	engine := search.New(search.Config{Seed: 11})
	results := engine.CrawlAll()

	for _, measure := range []core.SearchMeasure{core.MeasureKendallTau, core.MeasureJaccard} {
		ev := &core.SearchEvaluator{Schema: core.DefaultSchema(), Measure: measure}
		table := ev.EvaluateAll(results, nil)

		fmt.Printf("\n=== %v ===\n", measure)

		// Full demographic groups ranked by average unfairness.
		type row struct {
			name string
			v    float64
		}
		var groups []row
		for _, g := range core.DefaultSchema().FullGroups() {
			if v, ok := table.AggregateGroup(g, table.Queries(), table.Locations()); ok {
				groups = append(groups, row{g.Name(), v})
			}
		}
		sort.Slice(groups, func(i, j int) bool { return groups[i].v > groups[j].v })
		fmt.Println("groups, most to least divergent results:")
		for _, r := range groups {
			fmt.Printf("  %-14s %.3f\n", r.name, r.v)
		}

		// Locations.
		var locs []row
		for _, l := range table.Locations() {
			if v, ok := table.AggregateLocation(l, table.Groups(), table.Queries()); ok {
				locs = append(locs, row{string(l), v})
			}
		}
		sort.Slice(locs, func(i, j int) bool { return locs[i].v > locs[j].v })
		fmt.Printf("unfairest location: %s (%.3f); fairest: %s (%.3f)\n",
			locs[0].name, locs[0].v, locs[len(locs)-1].name, locs[len(locs)-1].v)

		// Query bases.
		var bases []row
		for _, base := range search.Bases() {
			var sum float64
			var n int
			for _, q := range search.TermsOfBase(base) {
				for _, g := range table.Groups() {
					for _, l := range table.Locations() {
						if v, ok := table.Get(g, q, l); ok {
							sum += v
							n++
						}
					}
				}
			}
			if n > 0 {
				bases = append(bases, row{base, sum / float64(n)})
			}
		}
		sort.Slice(bases, func(i, j int) bool { return bases[i].v > bases[j].v })
		fmt.Printf("most unfair query: %s (%.3f); fairest: %s (%.3f)\n",
			bases[0].name, bases[0].v, bases[len(bases)-1].name, bases[len(bases)-1].v)
	}
}
