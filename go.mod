module fairjob

go 1.22
