package main

import (
	"os"
	"path/filepath"
	"testing"

	"fairjob/internal/dataset"
)

// TestDatagenRoundTrip runs the full datagen pipeline into a temp
// directory and verifies the persisted crawl reconstructs into the same
// number of pages and participants it was generated from.
func TestDatagenRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full dataset generation")
	}
	dir := t.TempDir()
	if err := run(7, dir, true); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"taskers.jsonl", "pages.jsonl", "google.jsonl"} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}

	pf, err := os.Open(filepath.Join(dir, "pages.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	pages, err := dataset.ReadPages(pf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 5361 {
		t.Fatalf("pages = %d, want 5361", len(pages))
	}

	tf, err := os.Open(filepath.Join(dir, "taskers.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	taskers, err := dataset.ReadTaskers(tf)
	if err != nil {
		t.Fatal(err)
	}
	// Every worker referenced by a page must have a profile: the stored
	// dataset is self-contained and ToRankings succeeds.
	ds := &dataset.Marketplace{Taskers: taskers, Pages: pages}
	rankings, err := ds.ToRankings()
	if err != nil {
		t.Fatal(err)
	}
	if len(rankings) != 5361 {
		t.Fatalf("rankings = %d", len(rankings))
	}

	gf, err := os.Open(filepath.Join(dir, "google.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer gf.Close()
	recs, err := dataset.ReadSearchRecords(gf)
	if err != nil {
		t.Fatal(err)
	}
	// 11 studies × 5 terms × 18 participants.
	if len(recs) != 11*5*18 {
		t.Fatalf("google records = %d, want %d", len(recs), 11*5*18)
	}
	results := (&dataset.Google{Records: recs}).ToSearchResults()
	if len(results) != 55 {
		t.Fatalf("result sets = %d, want 55", len(results))
	}
}

func TestDatagenBadDir(t *testing.T) {
	// A path under a file cannot be created.
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(1, filepath.Join(f, "sub"), true); err == nil {
		t.Fatal("expected error for uncreatable directory")
	}
}
