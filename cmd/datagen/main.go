// Command datagen synthesizes the two case-study datasets — the
// TaskRabbit-like marketplace crawl and the Google-job-search study — and
// writes them as JSON-lines files, the synthetic equivalent of the paper's
// data collection (Figures 6 and 9 up to the F-Box).
//
// Usage:
//
//	datagen [-seed N] [-out DIR] [-observed]
//
// Output files:
//
//	DIR/taskers.jsonl   tasker profiles (with observed or true labels)
//	DIR/pages.jsonl     the 5,361 marketplace result pages
//	DIR/google.jsonl    the per-participant Google result lists
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fairjob/internal/dataset"
	"fairjob/internal/experiment"
)

func main() {
	var (
		seed     = flag.Uint64("seed", experiment.DefaultSeed, "generation seed")
		out      = flag.String("out", "data", "output directory")
		observed = flag.Bool("observed", true, "record the simulated AMT labels (false records ground truth)")
	)
	flag.Parse()

	if err := run(*seed, *out, *observed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(seed uint64, out string, observed bool) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	env := experiment.NewEnv(seed)
	env.ObservedLabels = observed

	ds := env.MarketDataset()
	if err := writeFile(filepath.Join(out, "taskers.jsonl"), func(f *os.File) error {
		return dataset.WriteTaskers(f, ds.Taskers)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(out, "pages.jsonl"), func(f *os.File) error {
		return dataset.WritePages(f, ds.Pages)
	}); err != nil {
		return err
	}
	google := dataset.FromSearchResults(env.GoogleResults())
	if err := writeFile(filepath.Join(out, "google.jsonl"), func(f *os.File) error {
		return dataset.WriteSearchRecords(f, google.Records)
	}); err != nil {
		return err
	}

	fmt.Printf("wrote %d taskers, %d pages, %d google records to %s\n",
		len(ds.Taskers), len(ds.Pages), len(google.Records), out)
	fmt.Printf("unique taskers appearing on pages: %d\n", ds.UniqueTaskersOnPages())
	for _, attr := range []string{"gender", "ethnicity"} {
		fmt.Printf("%s breakdown:", attr)
		for _, s := range ds.Breakdown(attr) {
			fmt.Printf(" %s %.1f%%", s.Value, 100*s.Fraction)
		}
		fmt.Println()
	}
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}
