// Command experiments regenerates every table and figure of the paper's
// evaluation against the synthetic substrates and reports the shape checks
// (paper finding vs measured), in the spirit of EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-seed N] [-format text|markdown|csv] [-only ID] [-observed]
//
// With no flags it runs the whole registry and prints plain-text tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fairjob/internal/experiment"
	"fairjob/internal/report"
)

func main() {
	var (
		seed     = flag.Uint64("seed", experiment.DefaultSeed, "generation seed")
		format   = flag.String("format", "text", "output format: text, markdown or csv")
		only     = flag.String("only", "", "run a single experiment by ID (e.g. T8); empty runs all")
		observed = flag.Bool("observed", false, "use the simulated AMT labels instead of ground-truth demographics")
		workers  = flag.Int("workers", 0, "worker goroutines for evaluation and batch serving (0 = GOMAXPROCS)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range experiment.All() {
			fmt.Printf("%-4s %s\n", r.ID, r.Title)
		}
		return
	}

	env := experiment.NewEnv(*seed)
	env.ObservedLabels = *observed
	env.Workers = *workers

	runners := experiment.All()
	if *only != "" {
		r, err := experiment.ByID(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		runners = []experiment.Runner{r}
	}

	failed := 0
	for _, r := range runners {
		fmt.Printf("==== %s: %s ====\n\n", r.ID, r.Title)
		res, err := r.Run(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.ID, err)
			failed++
			continue
		}
		for _, tbl := range res.Tables {
			if err := tbl.Write(os.Stdout, report.Format(*format)); err != nil {
				fmt.Fprintf(os.Stderr, "%s: render: %v\n", r.ID, err)
				os.Exit(1)
			}
		}
		for _, note := range res.Notes {
			fmt.Printf("  %s\n", note)
			if strings.HasPrefix(note, "shape [FAIL]") {
				failed++
			}
		}
		fmt.Println()
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d shape check(s) failed\n", failed)
		os.Exit(1)
	}
}
