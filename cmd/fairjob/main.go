// Command fairjob answers the paper's generic fairness questions
// against a marketplace or search-engine crawl: quantification ("which k groups / queries /
// locations is the site most or least unfair for?", solved with the
// Threshold Algorithm of §4.2), comparison ("where does the comparison
// of two groups / queries / locations reverse?", Algorithm 2), and
// mitigation ("re-rank one result page so a group's measured Exposure
// deviation drops", internal/mitigate).
//
// Usage:
//
//	fairjob quantify -dim group|query|location [-k 5] [-least] [-measure emd|exposure|kendall|jaccard] [-platform market|google] [-data DIR]
//	fairjob compare  -by group|query|location  -r1 A -r2 B [-measure ...] [-platform ...] [-data DIR]
//	fairjob batch    [-k 5] [-workers 0] [-measure ...] [-data DIR]
//	fairjob mitigate -group KEY-or-NAME [-mitigator fair|greedy|exposure|all] [-query Q -location L] [-p 0] [-alpha 0] [-budget 0] [-data DIR]
//	fairjob loadtest [-rate 200] [-arrival poisson|constant] [-warmup 2s] [-duration 10s] [-unique-frac 0.25] [-out FILE] [-data DIR]
//
// With -data it loads a crawl written by datagen (taskers.jsonl +
// pages.jsonl for the marketplace, google.jsonl for the search study);
// otherwise it synthesizes the default platform in memory. The emd and
// exposure measures imply -platform market; kendall and jaccard imply
// -platform google. Mitigation always works on the marketplace crawl
// with the exposure measure — the paper's §3.3.2 quantity — and
// defaults to the crawl's first page when -query/-location are omitted.
//
// All modes execute through the internal/serve query engine: the table is
// frozen into an immutable IndexSnapshot and queries run against it, so
// repeated questions hit the engine's result cache. The batch mode
// demonstrates the concurrent path: it fans a mixed Problem 1 / Problem 2
// workload across -workers goroutines via the batch API.
//
// The loadtest mode (DESIGN.md §13) offers an open-loop Poisson or
// constant arrival schedule of mixed P1/P2/P3 requests against the live
// engine while the continuous profiler samples the measured window, and
// emits one JSON artifact joining coordinated-omission-correct
// p50/p99/p999 latency with the top CPU attributions per request label
// and the run's allocation delta. It always serves the marketplace
// exposure snapshot with rankings attached, so mitigation shapes are in
// the mix. Any mode can additionally run the continuous profiler on a
// cadence with -profile, exposing the ring at /debug/profiles when
// -admin is set.
//
// Examples:
//
//	fairjob quantify -dim group -k 5
//	fairjob quantify -dim location -k 3 -least -measure exposure
//	fairjob quantify -dim group -k 5 -measure kendall
//	fairjob compare -r1 "gender=Male" -r2 "gender=Female" -by location -measure exposure
//	fairjob compare -r1 "Lawn Mowing" -r2 "Event Decorating" -by group
//	fairjob batch -k 3 -workers 8
//	fairjob mitigate -group "Asian Female" -mitigator all
//	fairjob mitigate -group "ethnicity=Black&gender=Female" -mitigator exposure -budget 5
//	fairjob loadtest -rate 300 -duration 30s -out loadtest.json
//	fairjob batch -admin :6060 -profile 60s
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"fairjob/internal/cluster"
	"fairjob/internal/compare"
	"fairjob/internal/core"
	"fairjob/internal/dataset"
	"fairjob/internal/experiment"
	"fairjob/internal/loadgen"
	"fairjob/internal/mitigate"
	"fairjob/internal/obs"
	"fairjob/internal/report"
	"fairjob/internal/serve"
	"fairjob/internal/topk"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	mode := os.Args[1]
	fs := flag.NewFlagSet(mode, flag.ExitOnError)
	var (
		data        = fs.String("data", "", "directory with taskers.jsonl and pages.jsonl (empty synthesizes the default marketplace)")
		seed        = fs.Uint64("seed", experiment.DefaultSeed, "seed when synthesizing")
		measure     = fs.String("measure", "emd", "unfairness measure: emd, exposure, kendall or jaccard")
		dim         = fs.String("dim", "group", "quantify: dimension to rank (group, query or location)")
		k           = fs.Int("k", 5, "quantify/batch: how many results")
		least       = fs.Bool("least", false, "quantify: return the least unfair instead of the most")
		r1          = fs.String("r1", "", "compare: first value (group key like \"gender=Male\", query, or location)")
		r2          = fs.String("r2", "", "compare: second value")
		by          = fs.String("by", "location", "compare: breakdown dimension (group, query or location)")
		workers     = fs.Int("workers", 0, "batch: worker goroutines (0 = GOMAXPROCS)")
		mitigator   = fs.String("mitigator", "all", "mitigate: re-ranker to apply (fair, greedy, exposure, or all)")
		group       = fs.String("group", "", "mitigate: target group, as a key (\"ethnicity=Asian&gender=Female\") or a name (\"Asian Female\")")
		query       = fs.String("query", "", "mitigate: page query (empty selects the crawl's first page)")
		location    = fs.String("location", "", "mitigate: page location (empty selects the crawl's first page)")
		minProp     = fs.Float64("p", 0, "mitigate: FA*IR minimum protected proportion (0 = the page's own share)")
		alpha       = fs.Float64("alpha", 0, "mitigate: FA*IR significance level (0 = the package default)")
		budget      = fs.Int("budget", 0, "mitigate: exposure-parity adjacent-swap budget (0 = unbounded)")
		deadline    = fs.Duration("deadline", 0, "per-request deadline for engine queries (0 = none); expired requests report a typed deadline error")
		maxInflight = fs.Int("max-inflight", 0, "admission gate capacity in weight units (0 = unlimited; negative sheds all compute, serving only cache hits)")
		admin       = fs.String("admin", "", "serve the telemetry admin endpoint on this address (e.g. :6060) and stay alive after the mode completes: /metrics, /healthz, /readyz, /debug/traces (+ /debug/traces/<id> waterfalls), /debug/slo, /debug/events, /debug/pprof/")
		logDest     = fs.String("log", "", "write one wide JSON event per request to this file (\"stderr\" or \"-\" for stderr); recent events are always retained in memory for /debug/events")
		logSample   = fs.Uint64("log-sample", 1, "keep one in N successful wide events and retain one in N fast-ok traces; failures, sheds and slow traces are always kept (0 or 1 keeps everything)")
		sloBound    = fs.Duration("slo", 0, "enable the SLO monitor: 99% of requests must answer within this bound and 99.9% must succeed; burn-rate alerts gate /readyz and the batch summary reports the verdicts (0 disables)")
		profEvery   = fs.Duration("profile", 0, "capture CPU/heap/goroutine/mutex/block profiles on this cadence into the /debug/profiles ring (0 disables; loadtest always profiles its own measured window)")
		rate        = fs.Float64("rate", 200, "loadtest: offered arrival rate in requests/second")
		arrival     = fs.String("arrival", "poisson", "loadtest: arrival process (poisson or constant)")
		warmup      = fs.Duration("warmup", 2*time.Second, "loadtest: offered-but-unmeasured warmup phase")
		duration    = fs.Duration("duration", 10*time.Second, "loadtest: measured phase length")
		uniqueFrac  = fs.Float64("unique-frac", 0.25, "loadtest: fraction of quantify requests rewritten to bust the result cache")
		partitions  = fs.Int("partitions", 1, "loadtest: serve through the scatter-gather coordinator over this many table partitions (1 = the plain single engine)")
		out         = fs.String("out", "", "loadtest: write the JSON report to this file (empty writes to stdout)")
	)
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel ctx: in-flight batch work drains (every
	// pending request reports a typed cancellation error rather than being
	// lost), the telemetry summary still flushes, and the admin endpoint
	// shuts down gracefully.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := obs.NewRegistry()
	// The Go runtime's own health — GC pauses, scheduler latency, heap
	// live vs goal, goroutine count — exports alongside the serving
	// metrics, so /metrics answers "is the runtime the bottleneck".
	obs.RegisterRuntimeMetrics(reg)
	// The tracer tail-samples with the same knobs as the logger: -slo
	// sets the slow threshold (a request over its latency bound is worth
	// keeping) and -log-sample the fast-ok retention rate, so heavy
	// traffic cannot flush the one interesting trace out of the ring.
	tracer := obs.NewTracerTailSampled(obs.DefaultTraceCapacity, obs.TailSamplingPolicy{
		SlowThreshold: *sloBound,
		KeepOneInN:    *logSample,
	})

	// Wide events always land in an in-memory ring (the /debug/events
	// view); -log additionally streams them as JSONL to a file or stderr.
	events := obs.NewRingSink(obs.DefaultEventCapacity)
	sinks := []obs.Sink{events}
	if *logDest != "" {
		w := os.Stderr
		if *logDest != "stderr" && *logDest != "-" {
			f, err := os.Create(*logDest)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		sinks = append(sinks, obs.NewWriterSink(w))
	}
	logger := obs.NewLogger(obs.LoggerOptions{
		Component: "serve",
		Measure:   *measure,
		Sink:      obs.MultiSink(sinks...),
		SampleN:   *logSample,
	})

	var slo *obs.SLOMonitor
	if *sloBound > 0 {
		slo = obs.NewSLOMonitor([]obs.Objective{
			{Name: "latency", Target: 0.99, LatencyBound: *sloBound},
			{Name: "errors", Target: 0.999},
		}, obs.SLOOptions{})
	}

	// The mitigate and loadtest modes need the marketplace pages
	// themselves, not just the table evaluated from them: their snapshot
	// carries both, so mitigation requests (loadtest mixes them into its
	// offered workload) re-rank the same generation they measure.
	var snap *serve.Snapshot
	// The loadtest mode keeps the raw table and crawl around: with
	// -partitions > 1 they are re-split across the coordinator's nodes
	// rather than served from the single snapshot below.
	var (
		ltTable    *core.Table
		ltRankings []*core.MarketplaceRanking
	)
	if mode == "mitigate" || mode == "loadtest" {
		rankings, err := buildRankings(*data, *seed)
		if err != nil {
			fatal(err)
		}
		ev := &core.MarketplaceEvaluator{Schema: core.DefaultSchema(), Measure: core.MeasureExposure, UseScores: true, Obs: reg}
		tbl, err := ev.EvaluateAllCtx(ctx, rankings, nil)
		if err != nil {
			fatal(err)
		}
		ltTable, ltRankings = tbl, rankings
		snap = serve.NewSnapshotWithRankings(tbl, nil, rankings)
	} else {
		tbl, err := buildTable(ctx, *data, *seed, *measure, reg)
		if err != nil {
			fatal(err)
		}
		snap = serve.NewSnapshot(tbl)
	}
	eng := serve.NewEngine(snap, serve.Options{
		Workers:         *workers,
		Obs:             reg,
		Tracer:          tracer,
		Log:             logger,
		SLO:             slo,
		DefaultDeadline: *deadline,
		MaxInflight:     *maxInflight,
	})

	// Profiling: loadtest synchronizes one capture round with its own
	// measured phase (the CPU window spans the measurement), while
	// -profile runs the continuous background cadence for any mode. The
	// deferred Stop is the graceful-shutdown contract: a SIGTERM
	// interrupts an in-flight CPU window but the partial capture is still
	// flushed into the ring before the process exits.
	var prof *obs.Profiler
	switch {
	case mode == "loadtest":
		prof = obs.NewProfiler(obs.ProfilerOptions{
			Registry:    reg,
			Interval:    *duration,
			CPUDuration: *duration,
		})
	case *profEvery > 0:
		prof = obs.NewProfiler(obs.ProfilerOptions{Registry: reg, Interval: *profEvery})
		prof.Start()
		defer prof.Stop()
	}

	var err error
	switch mode {
	case "quantify":
		err = quantify(ctx, eng, *dim, *k, *least)
	case "compare":
		err = runCompare(ctx, eng, *r1, *r2, *by)
	case "batch":
		err = runBatch(ctx, eng, *k, slo)
	case "mitigate":
		err = runMitigate(ctx, eng, *mitigator, *group, *query, *location, *minProp, *alpha, *budget)
	case "loadtest":
		// The load target is the single engine by default; -partitions > 1
		// swaps in the scatter-gather coordinator over the same table and
		// crawl, so the run measures distributed serving — hedges, leg
		// budgets and partial-result degradation included — with the same
		// workload mix and report shape.
		var target loadgen.Target = loadgen.NewEngineTarget(eng)
		if *partitions > 1 {
			target = cluster.NewWithRankings(ltTable, nil, ltRankings, cluster.Options{
				Partitions:      *partitions,
				Obs:             reg,
				Tracer:          tracer,
				Log:             logger,
				DefaultDeadline: *deadline,
				Seed:            *seed,
			})
		}
		err = runLoadtest(ctx, target, prof, loadtestConfig{
			rate:       *rate,
			arrival:    *arrival,
			warmup:     *warmup,
			duration:   *duration,
			seed:       *seed,
			uniqueFrac: *uniqueFrac,
			partitions: *partitions,
			out:        *out,
		})
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "fairjob: interrupted — in-flight work drained, partial results above")
	}

	// With -admin the process stays alive after the mode completes so the
	// run's metrics, traces and profiles can be inspected over HTTP.
	// /readyz tracks the engine's admission gate, so an overloaded replica
	// reports itself not ready while staying alive.
	if *admin != "" && ctx.Err() == nil {
		srv, err := obs.ServeAdmin(*admin, obs.AdminOptions{
			Registry: reg,
			Tracer:   tracer,
			Health:   &obs.Health{Ready: eng.Ready},
			SLO:      slo,
			Events:   events,
			Profiler: prof,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fairjob: admin endpoint on http://%s — /metrics, /healthz, /readyz, /debug/traces (waterfalls at /debug/traces/<id>), /debug/slo, /debug/events, /debug/profiles, /debug/pprof/ (Ctrl-C to exit)\n", srv.Addr())
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "fairjob: admin shutdown:", err)
		}
		fmt.Fprintln(os.Stderr, telemetrySummary(eng))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: fairjob quantify|compare|batch|mitigate|loadtest [flags] (see -h of each mode)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fairjob:", err)
	os.Exit(1)
}

// buildTable produces the unfairness table from a stored crawl or a fresh
// synthetic one. The measure name selects the platform: emd/exposure are
// marketplace measures, kendall/jaccard are search-engine measures. The
// evaluators report shard telemetry into reg, so -admin exposes the table
// build alongside the serving metrics. A SIGINT during a long crawl
// evaluation cancels ctx and aborts the build cleanly.
func buildTable(ctx context.Context, dir string, seed uint64, measure string, reg *obs.Registry) (*core.Table, error) {
	switch measure {
	case "emd", "exposure":
		m := core.MeasureEMD
		if measure == "exposure" {
			m = core.MeasureExposure
		}
		if dir == "" {
			env := experiment.NewEnv(seed)
			env.Obs = reg
			return env.MarketTable(m), nil
		}
		rankings, err := loadMarketRankings(dir)
		if err != nil {
			return nil, err
		}
		ev := &core.MarketplaceEvaluator{Schema: core.DefaultSchema(), Measure: m, Obs: reg}
		return ev.EvaluateAllCtx(ctx, rankings, nil)
	case "kendall", "jaccard":
		m := core.MeasureKendallTau
		if measure == "jaccard" {
			m = core.MeasureJaccard
		}
		if dir == "" {
			env := experiment.NewEnv(seed)
			env.Obs = reg
			return env.GoogleTable(m), nil
		}
		results, err := loadGoogleResults(dir)
		if err != nil {
			return nil, err
		}
		ev := &core.SearchEvaluator{Schema: core.DefaultSchema(), Measure: m, Obs: reg}
		return ev.EvaluateAllCtx(ctx, results, nil)
	default:
		return nil, fmt.Errorf("unknown measure %q (want emd, exposure, kendall or jaccard)", measure)
	}
}

// buildRankings produces the marketplace crawl the mitigate mode
// re-ranks: a stored datagen crawl when -data is set, the synthetic
// default otherwise.
func buildRankings(dir string, seed uint64) ([]*core.MarketplaceRanking, error) {
	if dir == "" {
		return experiment.NewEnv(seed).MarketCrawl(), nil
	}
	return loadMarketRankings(dir)
}

// loadMarketRankings reads a datagen marketplace crawl from dir.
func loadMarketRankings(dir string) ([]*core.MarketplaceRanking, error) {
	taskersF, err := os.Open(filepath.Join(dir, "taskers.jsonl"))
	if err != nil {
		return nil, err
	}
	defer taskersF.Close()
	taskers, err := dataset.ReadTaskers(taskersF)
	if err != nil {
		return nil, err
	}
	pagesF, err := os.Open(filepath.Join(dir, "pages.jsonl"))
	if err != nil {
		return nil, err
	}
	defer pagesF.Close()
	pages, err := dataset.ReadPages(pagesF)
	if err != nil {
		return nil, err
	}
	ds := &dataset.Marketplace{Taskers: taskers, Pages: pages}
	return ds.ToRankings()
}

// loadGoogleResults reads a datagen search study from dir.
func loadGoogleResults(dir string) ([]*core.SearchResults, error) {
	f, err := os.Open(filepath.Join(dir, "google.jsonl"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := dataset.ReadSearchRecords(f)
	if err != nil {
		return nil, err
	}
	return (&dataset.Google{Records: recs}).ToSearchResults(), nil
}

// parseDim maps a CLI dimension name to the compare enum shared by both
// problems.
func parseDim(s string) (compare.Dimension, error) {
	switch s {
	case "group":
		return compare.ByGroup, nil
	case "query":
		return compare.ByQuery, nil
	case "location":
		return compare.ByLocation, nil
	default:
		return 0, fmt.Errorf("unknown dimension %q (want group, query or location)", s)
	}
}

// displayName resolves a member key to a human-readable name (group keys
// become predicate names; queries and locations are their own names).
func displayName(snap *serve.Snapshot, dim compare.Dimension, key string) string {
	if dim == compare.ByGroup {
		if g, ok := snap.Group(key); ok {
			return g.Name()
		}
	}
	return key
}

// quantify solves Problem 1 through the serve engine with the Threshold
// Algorithm over the snapshot's pre-computed indices.
func quantify(ctx context.Context, eng *serve.Engine, dim string, k int, least bool) error {
	d, err := parseDim(dim)
	if err != nil {
		return err
	}
	dir := topk.MostUnfair
	label := "most"
	if least {
		dir = topk.LeastUnfair
		label = "least"
	}
	resp := eng.DoCtx(ctx, serve.Request{
		Problem:   serve.Quantify,
		Dim:       d,
		K:         k,
		Direction: dir,
		Algorithm: topk.TA,
	})
	if resp.Err != nil {
		return resp.Err
	}
	out := report.NewTable(fmt.Sprintf("%d %s unfair %ss (Threshold Algorithm)", k, label, dim),
		"Rank", dim, "Avg unfairness")
	for i, r := range resp.Results {
		out.AddRow(i+1, displayName(eng.Snapshot(), d, r.Key), r.Value)
	}
	return out.WriteText(os.Stdout)
}

// runCompare solves Problem 2 through the serve engine, inferring the
// operands' dimension from the snapshot's contents. The CLI keeps the
// defined-only aggregation semantics it has always used.
func runCompare(ctx context.Context, eng *serve.Engine, r1, r2, by string) error {
	if r1 == "" || r2 == "" {
		return fmt.Errorf("compare needs -r1 and -r2")
	}
	byDim, err := parseDim(by)
	if err != nil {
		return fmt.Errorf("unknown breakdown %q", by)
	}
	snap := eng.Snapshot()
	d1, ok1 := snap.DimensionOf(r1)
	d2, ok2 := snap.DimensionOf(r2)
	if !ok1 || !ok2 || d1 != d2 {
		return fmt.Errorf("cannot resolve %q and %q to one dimension (group key, query, or location)", r1, r2)
	}
	resp := eng.DoCtx(ctx, serve.Request{
		Problem:     serve.Compare,
		Of:          d1,
		R1:          r1,
		R2:          r2,
		By:          byDim,
		DefinedOnly: true,
	})
	if resp.Err != nil {
		return resp.Err
	}
	cmp := resp.Comparison

	out := report.NewTable(fmt.Sprintf("%s vs %s, broken down by %s", r1, r2, by),
		by, r1, r2, "differs from overall")
	out.AddRow("All", cmp.Overall1, cmp.Overall2, "")
	for _, b := range cmp.All {
		out.AddRow(displayName(snap, byDim, b.B), b.V1, b.V2, fmt.Sprintf("%v", b.Reversed))
	}
	return out.WriteText(os.Stdout)
}

// runBatch fans a mixed Problem 1 / Problem 2 workload across the
// engine's worker pool via the batch API: every dimension × direction
// quantification, plus the reversal analysis of the two most unfair
// groups, queries and locations. It prints one summary row per request
// and the engine's cache counters.
func runBatch(ctx context.Context, eng *serve.Engine, k int, slo *obs.SLOMonitor) error {
	snap := eng.Snapshot()
	var reqs []serve.Request
	for _, d := range []compare.Dimension{compare.ByGroup, compare.ByQuery, compare.ByLocation} {
		for _, dir := range []topk.Direction{topk.MostUnfair, topk.LeastUnfair} {
			reqs = append(reqs, serve.Request{
				Problem: serve.Quantify, Dim: d, K: k, Direction: dir, Algorithm: topk.TA,
			})
		}
	}
	// Compare the two most unfair members of each dimension, broken down
	// by one of the other dimensions.
	quantified := eng.DoBatchCtx(ctx, reqs[:len(reqs):len(reqs)])
	breakdown := map[compare.Dimension]compare.Dimension{
		compare.ByGroup:    compare.ByQuery,
		compare.ByQuery:    compare.ByLocation,
		compare.ByLocation: compare.ByQuery,
	}
	for i, resp := range quantified {
		if resp.Err != nil || reqs[i].Direction != topk.MostUnfair || len(resp.Results) < 2 {
			continue
		}
		reqs = append(reqs, serve.Request{
			Problem:     serve.Compare,
			Of:          reqs[i].Dim,
			R1:          resp.Results[0].Key,
			R2:          resp.Results[1].Key,
			By:          breakdown[reqs[i].Dim],
			DefinedOnly: true,
		})
	}

	out := report.NewTable(fmt.Sprintf("batch of %d fairness queries (one snapshot, generation %d)", len(reqs), snap.Gen()),
		"#", "problem", "question", "answer", "cached")
	for i, resp := range eng.DoBatchCtx(ctx, reqs) {
		req := reqs[i]
		var question, answer string
		switch req.Problem {
		case serve.Quantify:
			question = fmt.Sprintf("top-%d %v %s", req.K, req.Direction, req.Dim)
			if resp.Err == nil && len(resp.Results) > 0 {
				answer = fmt.Sprintf("%s (%.4f)", displayName(snap, req.Dim, resp.Results[0].Key), resp.Results[0].Value)
			}
		case serve.Compare:
			question = fmt.Sprintf("%s vs %s by %s", displayName(snap, req.Of, req.R1), displayName(snap, req.Of, req.R2), req.By)
			if resp.Err == nil {
				answer = fmt.Sprintf("%.4f vs %.4f, %d reversal(s)", resp.Comparison.Overall1, resp.Comparison.Overall2, len(resp.Comparison.Reversed))
			}
		}
		if resp.Err != nil {
			answer = "error: " + resp.Err.Error()
		}
		out.AddRow(i+1, req.Problem.String(), question, answer, resp.CacheHit)
	}
	if err := out.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println(telemetrySummary(eng))
	if slo != nil {
		fmt.Print(sloSummary(slo))
	}
	return nil
}

// runMitigate solves Problem 3 through the serve engine: measure the
// target group's exposure deviation on one page, re-rank with the
// requested mitigator(s), re-measure, and report the before/after pair
// with the permuted page.
func runMitigate(ctx context.Context, eng *serve.Engine, mitigatorName, group, query, location string, p, alpha float64, budget int) error {
	if group == "" {
		return fmt.Errorf("mitigate needs -group (a key like \"ethnicity=Asian&gender=Female\" or a name like \"Asian Female\")")
	}
	snap := eng.Snapshot()
	var gkey string
	if strings.Contains(group, "=") {
		g, err := core.ParseGroupKey(group)
		if err != nil {
			return err
		}
		gkey = g.Key()
	} else {
		g, ok := core.DefaultSchema().GroupByName(group)
		if !ok {
			return fmt.Errorf("unknown group name %q (want e.g. \"Asian Female\", or a key like \"ethnicity=Asian&gender=Female\")", group)
		}
		gkey = g.Key()
	}
	var kinds []mitigate.Kind
	if mitigatorName == "all" {
		kinds = mitigate.Kinds()
	} else {
		kind, err := mitigate.ParseKind(mitigatorName)
		if err != nil {
			return err
		}
		kinds = []mitigate.Kind{kind}
	}

	// With -query/-location the page is pinned; otherwise scan the crawl
	// for the first page where the target's measurement is defined (the
	// measure needs the target and at least one comparable group on the
	// page, which sparse pages may not have).
	pages := [][2]string{{query, location}}
	if query == "" && location == "" {
		pages = snap.Pages()
		if len(pages) == 0 {
			return fmt.Errorf("the crawl has no marketplace pages to mitigate")
		}
	}
	do := func(kind mitigate.Kind, q, l string) serve.Response {
		return eng.DoCtx(ctx, serve.Request{
			Problem:       serve.Mitigate,
			Mitigator:     kind,
			Group:         gkey,
			Query:         q,
			Location:      l,
			MinProportion: p,
			Alpha:         alpha,
			SwapBudget:    budget,
		})
	}
	var lastErr error
	for _, pg := range pages {
		q, l := pg[0], pg[1]
		first := do(kinds[0], q, l)
		if first.Err != nil {
			lastErr = first.Err
			continue
		}
		out := report.NewTable(
			fmt.Sprintf("mitigating exposure unfairness of %s on %q @ %q",
				displayName(snap, compare.ByGroup, gkey), q, l),
			"mitigator", "before", "after", "delta", "moved", "re-ranked page")
		responses := []serve.Response{first}
		for _, kind := range kinds[1:] {
			resp := do(kind, q, l)
			if resp.Err != nil {
				return resp.Err
			}
			responses = append(responses, resp)
		}
		for i, resp := range responses {
			m := resp.Mitigation
			out.AddRow(kinds[i].String(), m.Before, m.After, m.Delta(), m.Moved, strings.Join(m.IDs, " "))
		}
		return out.WriteText(os.Stdout)
	}
	return lastErr
}

// sloSummary renders one verdict line per objective for the batch
// summary: the -slo run answers "did this workload meet its objectives"
// without scraping /debug/slo.
func sloSummary(m *obs.SLOMonitor) string {
	var b strings.Builder
	for _, o := range m.Status().Objectives {
		verdict := "met"
		if o.Burning {
			verdict = "BURNING"
		}
		bound := ""
		if o.LatencyBoundNS > 0 {
			bound = fmt.Sprintf(" within %s", time.Duration(o.LatencyBoundNS))
		}
		fmt.Fprintf(&b, "slo %s: %.3g%% good%s — %d good / %d bad, %.1f%% budget remaining — %s\n",
			o.Name, 100*o.Target, bound, o.Good, o.Bad, 100*o.BudgetRemaining, verdict)
	}
	return b.String()
}

// telemetrySummary digests the engine's registry into the batch mode's
// one-line report: request count, cache hit ratio, p95 latency across
// both problems, and the snapshot generation that served the run — CLI
// observability without the -admin endpoint.
func telemetrySummary(eng *serve.Engine) string {
	s := eng.Registry().Snapshot()
	cs := eng.CacheStats()
	requests := s.CounterSum("serve_requests_total")
	ratio := 0.0
	if lookups := cs.Hits + cs.Misses; lookups > 0 {
		ratio = 100 * float64(cs.Hits) / float64(lookups)
	}
	p95 := "n/a"
	if h, ok := s.MergeHistograms("serve_request_seconds"); ok && h.Count > 0 {
		if q := h.Quantile(0.95); !math.IsNaN(q) {
			p95 = time.Duration(q * float64(time.Second)).Round(time.Microsecond).String()
		}
	}
	return fmt.Sprintf("telemetry: %d request(s), cache %d/%d hits (%.1f%%, %d eviction(s)), p95 latency %s, snapshot generation %d",
		requests, cs.Hits, cs.Hits+cs.Misses, ratio, cs.Evictions, p95, eng.Snapshot().Gen())
}
