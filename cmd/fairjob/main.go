// Command fairjob answers the paper's two generic fairness questions
// against a marketplace or search-engine crawl: quantification ("which k groups / queries /
// locations is the site most or least unfair for?", solved with the
// Threshold Algorithm of §4.2) and comparison ("where does the comparison
// of two groups / queries / locations reverse?", Algorithm 2).
//
// Usage:
//
//	fairjob quantify -dim group|query|location [-k 5] [-least] [-measure emd|exposure|kendall|jaccard] [-platform market|google] [-data DIR]
//	fairjob compare  -by group|query|location  -r1 A -r2 B [-measure ...] [-platform ...] [-data DIR]
//
// With -data it loads a crawl written by datagen (taskers.jsonl +
// pages.jsonl for the marketplace, google.jsonl for the search study);
// otherwise it synthesizes the default platform in memory. The emd and
// exposure measures imply -platform market; kendall and jaccard imply
// -platform google.
//
// Examples:
//
//	fairjob quantify -dim group -k 5
//	fairjob quantify -dim location -k 3 -least -measure exposure
//	fairjob quantify -dim group -k 5 -measure kendall
//	fairjob compare -r1 "gender=Male" -r2 "gender=Female" -by location -measure exposure
//	fairjob compare -r1 "Lawn Mowing" -r2 "Event Decorating" -by group
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fairjob/internal/compare"
	"fairjob/internal/core"
	"fairjob/internal/dataset"
	"fairjob/internal/experiment"
	"fairjob/internal/index"
	"fairjob/internal/report"
	"fairjob/internal/topk"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	mode := os.Args[1]
	fs := flag.NewFlagSet(mode, flag.ExitOnError)
	var (
		data    = fs.String("data", "", "directory with taskers.jsonl and pages.jsonl (empty synthesizes the default marketplace)")
		seed    = fs.Uint64("seed", experiment.DefaultSeed, "seed when synthesizing")
		measure = fs.String("measure", "emd", "unfairness measure: emd, exposure, kendall or jaccard")
		dim     = fs.String("dim", "group", "quantify: dimension to rank (group, query or location)")
		k       = fs.Int("k", 5, "quantify: how many results")
		least   = fs.Bool("least", false, "quantify: return the least unfair instead of the most")
		r1      = fs.String("r1", "", "compare: first value (group key like \"gender=Male\", query, or location)")
		r2      = fs.String("r2", "", "compare: second value")
		by      = fs.String("by", "location", "compare: breakdown dimension (group, query or location)")
	)
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	tbl, err := buildTable(*data, *seed, *measure)
	if err != nil {
		fatal(err)
	}

	switch mode {
	case "quantify":
		err = quantify(tbl, *dim, *k, *least)
	case "compare":
		err = runCompare(tbl, *r1, *r2, *by)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: fairjob quantify|compare [flags] (see -h of each mode)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fairjob:", err)
	os.Exit(1)
}

// buildTable produces the unfairness table from a stored crawl or a fresh
// synthetic one. The measure name selects the platform: emd/exposure are
// marketplace measures, kendall/jaccard are search-engine measures.
func buildTable(dir string, seed uint64, measure string) (*core.Table, error) {
	switch measure {
	case "emd", "exposure":
		m := core.MeasureEMD
		if measure == "exposure" {
			m = core.MeasureExposure
		}
		if dir == "" {
			env := experiment.NewEnv(seed)
			return env.MarketTable(m), nil
		}
		rankings, err := loadMarketRankings(dir)
		if err != nil {
			return nil, err
		}
		ev := &core.MarketplaceEvaluator{Schema: core.DefaultSchema(), Measure: m}
		return ev.EvaluateAll(rankings, nil), nil
	case "kendall", "jaccard":
		m := core.MeasureKendallTau
		if measure == "jaccard" {
			m = core.MeasureJaccard
		}
		if dir == "" {
			env := experiment.NewEnv(seed)
			return env.GoogleTable(m), nil
		}
		results, err := loadGoogleResults(dir)
		if err != nil {
			return nil, err
		}
		ev := &core.SearchEvaluator{Schema: core.DefaultSchema(), Measure: m}
		return ev.EvaluateAll(results, nil), nil
	default:
		return nil, fmt.Errorf("unknown measure %q (want emd, exposure, kendall or jaccard)", measure)
	}
}

// loadMarketRankings reads a datagen marketplace crawl from dir.
func loadMarketRankings(dir string) ([]*core.MarketplaceRanking, error) {
	taskersF, err := os.Open(filepath.Join(dir, "taskers.jsonl"))
	if err != nil {
		return nil, err
	}
	defer taskersF.Close()
	taskers, err := dataset.ReadTaskers(taskersF)
	if err != nil {
		return nil, err
	}
	pagesF, err := os.Open(filepath.Join(dir, "pages.jsonl"))
	if err != nil {
		return nil, err
	}
	defer pagesF.Close()
	pages, err := dataset.ReadPages(pagesF)
	if err != nil {
		return nil, err
	}
	ds := &dataset.Marketplace{Taskers: taskers, Pages: pages}
	return ds.ToRankings()
}

// loadGoogleResults reads a datagen search study from dir.
func loadGoogleResults(dir string) ([]*core.SearchResults, error) {
	f, err := os.Open(filepath.Join(dir, "google.jsonl"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := dataset.ReadSearchRecords(f)
	if err != nil {
		return nil, err
	}
	return (&dataset.Google{Records: recs}).ToSearchResults(), nil
}

// quantify solves Problem 1 with the Threshold Algorithm over the
// pre-computed indices.
func quantify(tbl *core.Table, dim string, k int, least bool) error {
	dir := topk.MostUnfair
	label := "most"
	if least {
		dir = topk.LeastUnfair
		label = "least"
	}
	var results []topk.Result
	var err error
	switch dim {
	case "group":
		results, err = topk.GroupFairness(index.BuildGroupIndex(tbl), nil, nil, k, dir)
	case "query":
		results, err = topk.QueryFairness(index.BuildQueryIndex(tbl), nil, nil, k, dir)
	case "location":
		results, err = topk.LocationFairness(index.BuildLocationIndex(tbl), nil, nil, k, dir)
	default:
		return fmt.Errorf("unknown dimension %q (want group, query or location)", dim)
	}
	if err != nil {
		return err
	}
	out := report.NewTable(fmt.Sprintf("%d %s unfair %ss (Threshold Algorithm)", k, label, dim),
		"Rank", dim, "Avg unfairness")
	for i, r := range results {
		name := r.Key
		if dim == "group" {
			if g, ok := tbl.GroupByKey(r.Key); ok {
				name = g.Name()
			}
		}
		out.AddRow(i+1, name, r.Value)
	}
	return out.WriteText(os.Stdout)
}

// runCompare solves Problem 2 for the two values, inferring their
// dimension from the table's contents.
func runCompare(tbl *core.Table, r1, r2, by string) error {
	if r1 == "" || r2 == "" {
		return fmt.Errorf("compare needs -r1 and -r2")
	}
	var byDim compare.Dimension
	switch by {
	case "group":
		byDim = compare.ByGroup
	case "query":
		byDim = compare.ByQuery
	case "location":
		byDim = compare.ByLocation
	default:
		return fmt.Errorf("unknown breakdown %q", by)
	}
	c := compare.NewDefinedOnly(tbl)

	dimOf := func(v string) string {
		if _, ok := tbl.GroupByKey(v); ok {
			return "group"
		}
		for _, q := range tbl.Queries() {
			if string(q) == v {
				return "query"
			}
		}
		for _, l := range tbl.Locations() {
			if string(l) == v {
				return "location"
			}
		}
		return ""
	}
	d1, d2 := dimOf(r1), dimOf(r2)
	if d1 == "" || d1 != d2 {
		return fmt.Errorf("cannot resolve %q and %q to one dimension (group key, query, or location)", r1, r2)
	}

	var cmp *compare.Comparison
	var err error
	switch d1 {
	case "group":
		cmp, err = c.Groups(r1, r2, byDim, compare.Scope{})
	case "query":
		cmp, err = c.Queries(core.Query(r1), core.Query(r2), byDim, compare.Scope{})
	case "location":
		cmp, err = c.Locations(core.Location(r1), core.Location(r2), byDim, compare.Scope{})
	}
	if err != nil {
		return err
	}

	name := func(key string) string {
		if byDim == compare.ByGroup {
			if g, ok := tbl.GroupByKey(key); ok {
				return g.Name()
			}
		}
		return key
	}
	out := report.NewTable(fmt.Sprintf("%s vs %s, broken down by %s", r1, r2, by),
		by, r1, r2, "differs from overall")
	out.AddRow("All", cmp.Overall1, cmp.Overall2, "")
	for _, b := range cmp.All {
		out.AddRow(name(b.B), b.V1, b.V2, fmt.Sprintf("%v", b.Reversed))
	}
	return out.WriteText(os.Stdout)
}
