package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fairjob/internal/cluster"
	"fairjob/internal/core"
	"fairjob/internal/dataset"
	"fairjob/internal/loadgen"
	"fairjob/internal/obs"
	"fairjob/internal/serve"
)

// writeTinyDataset writes a minimal but valid datagen-format crawl to dir.
func writeTinyDataset(t *testing.T, dir string) {
	t.Helper()
	taskers := []dataset.TaskerRecord{
		{ID: "t1", City: "NYC", Gender: "Male", Ethnicity: "White"},
		{ID: "t2", City: "NYC", Gender: "Female", Ethnicity: "Black"},
		{ID: "t3", City: "NYC", Gender: "Male", Ethnicity: "Asian"},
		{ID: "t4", City: "NYC", Gender: "Female", Ethnicity: "White"},
	}
	pages := []dataset.PageRecord{
		{Query: "cleaning", Location: "NYC", Workers: []string{"t1", "t2", "t3", "t4"}},
		{Query: "moving", Location: "NYC", Workers: []string{"t3", "t4", "t1", "t2"}},
	}
	google := []dataset.SearchRecord{
		{Query: "cleaning jobs", Location: "NYC", UserID: "u1", Gender: "Male", Ethnicity: "White", Results: []string{"a", "b", "c"}},
		{Query: "cleaning jobs", Location: "NYC", UserID: "u2", Gender: "Female", Ethnicity: "White", Results: []string{"c", "b", "a"}},
		{Query: "cleaning jobs", Location: "NYC", UserID: "u3", Gender: "Male", Ethnicity: "Black", Results: []string{"a", "b", "x"}},
		{Query: "cleaning jobs", Location: "NYC", UserID: "u4", Gender: "Female", Ethnicity: "Black", Results: []string{"a", "b", "c"}},
	}
	write := func(name string, fn func(f *os.File) error) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
	}
	write("taskers.jsonl", func(f *os.File) error { return dataset.WriteTaskers(f, taskers) })
	write("pages.jsonl", func(f *os.File) error { return dataset.WritePages(f, pages) })
	write("google.jsonl", func(f *os.File) error { return dataset.WriteSearchRecords(f, google) })
}

func TestBuildTableFromMarketDataset(t *testing.T) {
	dir := t.TempDir()
	writeTinyDataset(t, dir)
	for _, measure := range []string{"emd", "exposure"} {
		tbl, err := buildTable(context.Background(), dir, 1, measure, nil)
		if err != nil {
			t.Fatalf("%s: %v", measure, err)
		}
		if len(tbl.Queries()) != 2 {
			t.Fatalf("%s: queries = %v", measure, tbl.Queries())
		}
		if tbl.Len() == 0 {
			t.Fatalf("%s: empty table", measure)
		}
	}
}

func TestBuildTableFromGoogleDataset(t *testing.T) {
	dir := t.TempDir()
	writeTinyDataset(t, dir)
	for _, measure := range []string{"kendall", "jaccard"} {
		tbl, err := buildTable(context.Background(), dir, 1, measure, nil)
		if err != nil {
			t.Fatalf("%s: %v", measure, err)
		}
		wf := core.NewGroup(
			core.Predicate{Attr: "gender", Value: "Female"},
			core.Predicate{Attr: "ethnicity", Value: "White"})
		if _, ok := tbl.Get(wf, "cleaning jobs", "NYC"); !ok {
			t.Fatalf("%s: White Female cell missing", measure)
		}
	}
}

func TestBuildTableErrors(t *testing.T) {
	if _, err := buildTable(context.Background(), "", 1, "cosine", nil); err == nil {
		t.Fatal("unknown measure should error")
	}
	if _, err := buildTable(context.Background(), t.TempDir(), 1, "emd", nil); err == nil {
		t.Fatal("missing files should error")
	}
	if _, err := buildTable(context.Background(), t.TempDir(), 1, "kendall", nil); err == nil {
		t.Fatal("missing google.jsonl should error")
	}
}

func TestQuantifyAndCompareOnDataset(t *testing.T) {
	dir := t.TempDir()
	writeTinyDataset(t, dir)
	tbl, err := buildTable(context.Background(), dir, 1, "emd", nil)
	if err != nil {
		t.Fatal(err)
	}
	// These render to stdout; the tests assert they succeed and reject
	// bad dimensions. All modes run through one serve engine, as main does.
	eng := serve.NewEngine(serve.NewSnapshot(tbl), serve.Options{})
	if err := quantify(context.Background(), eng, "group", 3, false); err != nil {
		t.Fatal(err)
	}
	if err := quantify(context.Background(), eng, "query", 2, true); err != nil {
		t.Fatal(err)
	}
	if err := quantify(context.Background(), eng, "nebula", 2, false); err == nil {
		t.Fatal("unknown dimension should error")
	}
	if err := runCompare(context.Background(), eng, "cleaning", "moving", "group"); err != nil {
		t.Fatal(err)
	}
	if err := runCompare(context.Background(), eng, "gender=Male", "gender=Female", "query"); err != nil {
		t.Fatal(err)
	}
	if err := runCompare(context.Background(), eng, "", "x", "group"); err == nil {
		t.Fatal("missing r1 should error")
	}
	if err := runCompare(context.Background(), eng, "cleaning", "gender=Male", "group"); err == nil {
		t.Fatal("mixed dimensions should error")
	}
	if err := runCompare(context.Background(), eng, "cleaning", "moving", "universe"); err == nil {
		t.Fatal("unknown breakdown should error")
	}
	if err := runBatch(context.Background(), eng, 2, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunLoadtest(t *testing.T) {
	dir := t.TempDir()
	writeTinyDataset(t, dir)
	tbl, err := buildTable(context.Background(), dir, 1, "exposure", nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := serve.NewEngine(serve.NewSnapshot(tbl), serve.Options{})
	prof := obs.NewProfiler(obs.ProfilerOptions{Interval: time.Second, CPUDuration: time.Second})
	out := filepath.Join(dir, "report.json")
	cfg := loadtestConfig{
		rate:     100,
		arrival:  "poisson",
		warmup:   100 * time.Millisecond,
		duration: 400 * time.Millisecond,
		seed:     7,
		out:      out,
	}
	if err := runLoadtest(context.Background(), loadgen.NewEngineTarget(eng), prof, cfg); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art loadtestArtifact
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatalf("artifact not JSON: %v", err)
	}
	if art.Completed == 0 || art.Latency.P99 <= 0 {
		t.Fatalf("artifact lacks measurements: completed=%d p99=%d", art.Completed, art.Latency.P99)
	}
	// The join half exists even when the CPU window was too quiet to
	// attribute: top_cpu_labels is a (possibly empty) list, never null.
	if art.Profile.TopCPULabels == nil {
		t.Fatal("artifact profile join missing top_cpu_labels")
	}
	if art.Profile.Error != "" {
		t.Fatalf("profile join degraded: %s", art.Profile.Error)
	}

	if err := runLoadtest(context.Background(), loadgen.NewEngineTarget(eng), prof, loadtestConfig{rate: 10, arrival: "warp"}); err == nil {
		t.Fatal("bad arrival process should error")
	}
	if err := runLoadtest(context.Background(), loadgen.NewEngineTarget(eng), prof, loadtestConfig{rate: -1, arrival: "poisson"}); err == nil {
		t.Fatal("negative rate should error")
	}

	// The partitioned path: the same loadtest drives a scatter-gather
	// coordinator over the same table, and still produces a complete
	// artifact.
	coord := cluster.New(tbl, cluster.Options{Partitions: 3, Seed: 7})
	partOut := filepath.Join(dir, "report_partitioned.json")
	cfg.partitions = 3
	cfg.out = partOut
	if err := runLoadtest(context.Background(), coord, prof, cfg); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(partOut)
	if err != nil {
		t.Fatal(err)
	}
	var partArt loadtestArtifact
	if err := json.Unmarshal(raw, &partArt); err != nil {
		t.Fatalf("partitioned artifact not JSON: %v", err)
	}
	if partArt.Completed == 0 {
		t.Fatal("partitioned run measured nothing")
	}
	if got, want := partArt.Outcomes["ok"], partArt.Completed; got != want {
		t.Fatalf("partitioned run outcomes %v, want all %d ok", partArt.Outcomes, want)
	}
}
