package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"fairjob/internal/loadgen"
	"fairjob/internal/obs"
)

// loadtestConfig carries the loadtest mode's flag values.
type loadtestConfig struct {
	rate       float64
	arrival    string
	warmup     time.Duration
	duration   time.Duration
	seed       uint64
	uniqueFrac float64
	partitions int
	out        string
}

// loadtestProfileJoin is the profiling half of the loadtest artifact: the
// top CPU attributions by pprof label and the allocation delta, both
// scoped to the measured run. A capture failure (e.g. another CPU
// profile already running process-wide) degrades to Error — the latency
// half of the report still flushes.
type loadtestProfileJoin struct {
	CPUProfileID uint64           `json:"cpu_profile_id,omitempty"`
	CPUSampleNs  int64            `json:"cpu_sample_total_ns"`
	TopCPULabels []obs.LabelTotal `json:"top_cpu_labels"`
	HeapDelta    *obs.HeapDelta   `json:"heap_delta,omitempty"`
	Error        string           `json:"error,omitempty"`
}

// loadtestArtifact is the single JSON document the loadtest mode
// produces: coordinated-omission-correct latency under the offered load,
// joined with where the CPU and allocations actually went, decomposed by
// the same request labels the latency breakdown uses.
type loadtestArtifact struct {
	*loadgen.Report
	Profile loadtestProfileJoin `json:"profile"`
}

// loadtestTopLabels bounds how many labeled CPU attributions the
// artifact reports.
const loadtestTopLabels = 5

// runLoadtest drives the target — a single engine or a partitioned
// coordinator — open-loop while the profiler samples the measured
// phase, then writes the joined artifact. The CPU window is aligned
// with the measurement phase: sampling starts when warmup ends and
// stops when the run completes (or a SIGTERM cancels ctx — the partial
// window and an interrupted-but-complete report still flush).
func runLoadtest(ctx context.Context, target loadgen.Target, prof *obs.Profiler, cfg loadtestConfig) error {
	arr, err := loadgen.ParseArrival(cfg.arrival)
	if err != nil {
		return err
	}
	wl, err := loadgen.BuildWorkload(target, cfg.uniqueFrac)
	if err != nil {
		return err
	}
	runner, err := loadgen.NewRunner(target, wl, loadgen.Options{
		Rate:       cfg.rate,
		Arrival:    arr,
		Warmup:     cfg.warmup,
		Duration:   cfg.duration,
		Seed:       cfg.seed,
		UniqueFrac: cfg.uniqueFrac,
	})
	if err != nil {
		return err
	}
	across := ""
	if cfg.partitions > 1 {
		across = fmt.Sprintf(" across %d partitions", cfg.partitions)
	}
	fmt.Fprintf(os.Stderr, "fairjob: loadtest %s arrivals at %g rps — %s warmup, %s measured, %d shape(s) in the mix%s\n",
		arr, cfg.rate, cfg.warmup, cfg.duration, len(wl.Labels()), across)

	// Heap baseline now, so the post-run allocation delta spans exactly
	// the run (warmup included — cache fills are allocation too, and
	// worth seeing).
	prof.CaptureHeap()

	runCtx, runDone := context.WithCancel(ctx)
	defer runDone()
	var (
		wg  sync.WaitGroup
		rep *loadgen.Report
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer runDone()
		rep = runner.Run(ctx)
	}()

	// Hold the CPU window until warmup ends so the profile describes the
	// measured phase, not the cache-filling one. An early SIGTERM (or a
	// run that dies in warmup) skips ahead via runCtx.
	select {
	case <-time.After(cfg.warmup):
	case <-runCtx.Done():
	}
	// One full capture round: the CPU window runs until the measured
	// phase completes (runCtx cancels it), then the instantaneous
	// heap/goroutine/mutex/block snapshots describe the just-loaded
	// process. The round lands in the ring, so with -admin the same
	// profiles remain fetchable at /debug/profiles afterwards.
	prof.CaptureRound(runCtx)
	wg.Wait()

	art := &loadtestArtifact{Report: rep, Profile: joinProfile(prof)}
	w := os.Stdout
	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "fairjob: loadtest done — %d measured (%.1f rps achieved), p50 %s p99 %s p999 %s max %s\n",
		rep.Completed, rep.AchievedRPS,
		time.Duration(rep.Latency.P50), time.Duration(rep.Latency.P99),
		time.Duration(rep.Latency.P999), time.Duration(rep.Latency.Max))
	for i, lt := range art.Profile.TopCPULabels {
		if i == 0 {
			fmt.Fprintln(os.Stderr, "fairjob: top CPU by request label:")
		}
		fmt.Fprintf(os.Stderr, "  %s=%s  %s (%.1f%%)\n",
			lt.Key, lt.Value, time.Duration(lt.Total), 100*lt.Fraction)
	}
	return nil
}

// joinProfile extracts the run's CPU attribution and allocation delta
// from the profiler's freshest captures.
func joinProfile(prof *obs.Profiler) loadtestProfileJoin {
	var join loadtestProfileJoin
	cp, ok := prof.Latest(obs.ProfileCPU)
	if !ok {
		join.Error = "no CPU profile captured (another profiler may hold the process-wide CPU profile)"
	} else {
		join.CPUProfileID = cp.ID
		totals, total, err := obs.LabelTotals(cp.Data)
		if err != nil {
			join.Error = "CPU profile unparseable: " + err.Error()
		} else {
			join.CPUSampleNs = total
			// LabelTotals groups by key; the artifact wants the largest
			// attributions overall, whatever their key.
			sort.SliceStable(totals, func(i, j int) bool { return totals[i].Total > totals[j].Total })
			if len(totals) > loadtestTopLabels {
				totals = totals[:loadtestTopLabels]
			}
			join.TopCPULabels = totals
		}
	}
	if join.TopCPULabels == nil {
		join.TopCPULabels = []obs.LabelTotal{}
	}
	if d, ok := prof.LatestHeapDelta(); ok {
		join.HeapDelta = d
	}
	return join
}
