package fairjob_test

import (
	"fmt"
	"sync"
	"testing"

	"fairjob/internal/core"
	"fairjob/internal/experiment"
	"fairjob/internal/index"
	"fairjob/internal/marketplace"
	"fairjob/internal/metrics"
	"fairjob/internal/search"
	"fairjob/internal/stats"
	"fairjob/internal/topk"
)

// The benchmark environment is built once: dataset generation is the
// expensive part and is benchmarked separately (BenchmarkCrawl*); the
// per-table benchmarks then measure the analysis cost of regenerating each
// of the paper's artifacts.
var (
	benchEnvOnce sync.Once
	benchEnv     *experiment.Env
)

func env(b *testing.B) *experiment.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv = experiment.NewEnv(0)
		// Pre-build every table the runners read so the timed loop
		// measures analysis, not dataset synthesis.
		benchEnv.MarketTable(core.MeasureEMD)
		benchEnv.MarketTable(core.MeasureExposure)
		benchEnv.GoogleTable(core.MeasureKendallTau)
		benchEnv.GoogleTable(core.MeasureJaccard)
		benchEnv.MarketDataset()
	})
	return benchEnv
}

// benchRunner regenerates one paper artifact per iteration.
func benchRunner(b *testing.B, id string) {
	b.Helper()
	e := env(b)
	r, err := experiment.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(e); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per figure and table of the paper's evaluation.

func BenchmarkFig1(b *testing.B)   { benchRunner(b, "F1") }
func BenchmarkFig2(b *testing.B)   { benchRunner(b, "F2") }
func BenchmarkFig3(b *testing.B)   { benchRunner(b, "F3") }
func BenchmarkFig4(b *testing.B)   { benchRunner(b, "F4") }
func BenchmarkFig5(b *testing.B)   { benchRunner(b, "F5") }
func BenchmarkFig7(b *testing.B)   { benchRunner(b, "F7") }
func BenchmarkFig8(b *testing.B)   { benchRunner(b, "F8") }
func BenchmarkTable6(b *testing.B) { benchRunner(b, "T6") }
func BenchmarkTable7(b *testing.B) { benchRunner(b, "T7") }
func BenchmarkTable8(b *testing.B) { benchRunner(b, "T8") }
func BenchmarkTable9(b *testing.B) { benchRunner(b, "T9") }

// BenchmarkTable10 covers the paper's Tables 10 and 11 (one runner emits
// both).
func BenchmarkTable10(b *testing.B) { benchRunner(b, "T10") }
func BenchmarkTable12(b *testing.B) { benchRunner(b, "T12") }

// BenchmarkTable13 covers Tables 13 and 14.
func BenchmarkTable13(b *testing.B)     { benchRunner(b, "T13") }
func BenchmarkTable15(b *testing.B)     { benchRunner(b, "T15") }
func BenchmarkGoogleQuant(b *testing.B) { benchRunner(b, "GQ") }
func BenchmarkTable16(b *testing.B)     { benchRunner(b, "T16") }
func BenchmarkTable18(b *testing.B)     { benchRunner(b, "T18") }
func BenchmarkTable20(b *testing.B)     { benchRunner(b, "T20") }

// BenchmarkCrawlTaskRabbit measures the full 5,361-query synthetic crawl.
func BenchmarkCrawlTaskRabbit(b *testing.B) {
	m := marketplace.New(marketplace.Config{Seed: 7})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(m.CrawlAll()); got != marketplace.PaperQueryCount {
			b.Fatalf("crawl = %d", got)
		}
	}
}

// BenchmarkCrawlGoogle measures the full 11-study Google sweep.
func BenchmarkCrawlGoogle(b *testing.B) {
	e := search.New(search.Config{Seed: 11})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(e.CrawlAll()); got != 55 {
			b.Fatalf("sweep = %d", got)
		}
	}
}

// BenchmarkEvaluate measures the F-Box itself: turning the crawl into the
// d<g,q,l> table under each marketplace measure.
func BenchmarkEvaluate(b *testing.B) {
	m := marketplace.New(marketplace.Config{Seed: 7})
	crawl := m.CrawlAll()
	for _, measure := range []core.MarketplaceMeasure{core.MeasureEMD, core.MeasureExposure} {
		b.Run(measure.String(), func(b *testing.B) {
			ev := &core.MarketplaceEvaluator{Schema: core.DefaultSchema(), Measure: measure}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev.EvaluateAll(crawl, nil)
			}
		})
	}
}

// BenchmarkEvaluateParallel measures the sharded evaluation pipeline at
// increasing worker counts, for both marketplace measures. workers=1 is
// the single-threaded partitioned pipeline (contrast with the serial
// nested scan timed by BenchmarkEvaluate before PR 1; see EXPERIMENTS.md
// for the recorded trajectory); higher counts show the sharding scaling
// on multi-core hosts.
func BenchmarkEvaluateParallel(b *testing.B) {
	m := marketplace.New(marketplace.Config{Seed: 7})
	crawl := m.CrawlAll()
	for _, measure := range []core.MarketplaceMeasure{core.MeasureEMD, core.MeasureExposure} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", measure, workers), func(b *testing.B) {
				ev := &core.MarketplaceEvaluator{Schema: core.DefaultSchema(), Measure: measure, Workers: workers}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev.EvaluateAll(crawl, nil)
				}
			})
		}
	}
}

// BenchmarkSearchEvaluate measures the F-Box on the Google sweep under
// both search measures, with worker-count sub-benchmarks. The pairwise
// distance cache means each user pair is measured once per result set
// regardless of how many (g, g') combinations include it.
func BenchmarkSearchEvaluate(b *testing.B) {
	e := search.New(search.Config{Seed: 11})
	sweep := e.CrawlAll()
	for _, measure := range []core.SearchMeasure{core.MeasureKendallTau, core.MeasureJaccard} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", measure, workers), func(b *testing.B) {
				ev := &core.SearchEvaluator{Schema: core.DefaultSchema(), Measure: measure, Workers: workers}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev.EvaluateAll(sweep, nil)
				}
			})
		}
	}
}

// BenchmarkAblationTopK compares the paper's Threshold Algorithm against
// Fagin's original FA and a naive full scan on the group-fairness
// instance, for growing scopes (DESIGN.md A1).
func BenchmarkAblationTopK(b *testing.B) {
	gi := index.BuildGroupIndex(env(b).MarketTable(core.MeasureEMD))
	for _, nq := range []int{8, 32, 96} {
		qs := gi.Queries[:nq]
		src, err := topk.NewGroupLists(gi, qs, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, algo := range []topk.Algorithm{topk.TA, topk.FA, topk.Naive, topk.NRA} {
			b.Run(fmt.Sprintf("algo=%v/queries=%d", algo, nq), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := topk.TopK(src, 3, topk.MostUnfair, algo); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationEMDBins measures the EMD measure's sensitivity to the
// histogram bin count (DESIGN.md A2).
func BenchmarkAblationEMDBins(b *testing.B) {
	m := marketplace.New(marketplace.Config{Seed: 7})
	crawl := m.CrawlAll()[:200]
	groups := core.DefaultSchema().Universe()
	for _, bins := range []int{5, 10, 20, 50} {
		b.Run(fmt.Sprintf("bins=%d", bins), func(b *testing.B) {
			ev := &core.MarketplaceEvaluator{Schema: core.DefaultSchema(), Measure: core.MeasureEMD, Bins: bins}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev.EvaluateAll(crawl, groups)
			}
		})
	}
}

// BenchmarkAblationIndexBuild measures building the three index families
// from the full unfairness table (DESIGN.md A3).
func BenchmarkAblationIndexBuild(b *testing.B) {
	tbl := env(b).MarketTable(core.MeasureEMD)
	b.Run("group-index", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			index.BuildGroupIndex(tbl)
		}
	})
	b.Run("query-index", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			index.BuildQueryIndex(tbl)
		}
	})
	b.Run("location-index", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			index.BuildLocationIndex(tbl)
		}
	})
}

// BenchmarkMetrics micro-benchmarks the four distance measures on
// realistic list/histogram sizes.
func BenchmarkMetrics(b *testing.B) {
	rng := stats.NewRNG(5)
	listA := make([]string, 30)
	listB := make([]string, 30)
	perm := rng.Perm(30)
	for i := 0; i < 30; i++ {
		listA[i] = fmt.Sprintf("item%02d", i)
		listB[i] = fmt.Sprintf("item%02d", perm[i])
	}
	b.Run("KendallTau30", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			metrics.KendallTauDistance(listA, listB)
		}
	})
	b.Run("Jaccard30", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			metrics.JaccardDistance(listA, listB)
		}
	})
	h1 := stats.NewHistogram(0, 1, 10)
	h2 := stats.NewHistogram(0, 1, 10)
	for i := 0; i < 25; i++ {
		h1.Add(rng.Float64())
		h2.Add(rng.Float64())
	}
	b.Run("EMD10bins", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			metrics.EMDHistograms(h1, h2)
		}
	})
	xs := make([]float64, 25)
	ys := make([]float64, 25)
	for i := range xs {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	b.Run("EMDSamples25", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			metrics.EMDSamples(xs, ys, 0, 1)
		}
	})
}
